"""Integration-level tests for the managed-ML and VM platform simulations."""

import pytest

from repro.cloud import aws
from repro.core.planner import Planner
from repro.models import get_model
from repro.platforms.autoscaling import TargetTrackingScaler
from repro.runtimes import get_runtime
from repro.serving import Deployment, PlatformKind, ServiceConfig
from repro.sim import Environment


class TestManagedMl:
    def test_starts_with_minimum_instances(self, bench, planner, tiny_w40):
        deployment = planner.plan("aws", "mobilenet", "tf1.15", "managed_ml")
        result = bench.run(deployment, tiny_w40)
        assert result.usage.instances_created >= 1
        assert result.usage.instance_seconds > 0
        assert result.cost > 0

    def test_latency_much_higher_than_serverless(self, bench, planner,
                                                 small_w120):
        managed = bench.run(
            planner.plan("aws", "mobilenet", "tf1.15", "managed_ml"), small_w120)
        serverless = bench.run(
            planner.plan("aws", "mobilenet", "tf1.15", "serverless"), small_w120)
        assert managed.average_latency > 10 * serverless.average_latency

    def test_overload_causes_failures(self, bench, planner, small_w120):
        result = bench.run(
            planner.plan("aws", "albert", "tf1.15", "managed_ml"), small_w120)
        assert result.success_ratio < 0.9
        assert result.failed

    def test_autoscaler_adds_instances_under_load(self, planner, small_w120,
                                                  bench):
        result = bench.run(
            planner.plan("aws", "mobilenet", "tf1.15", "managed_ml"), small_w120)
        # The w-120 bursts exceed one instance's capacity; within the
        # (compressed) run the scaler should have launched more.
        assert result.usage.instances_created >= 1
        assert result.usage.peak_instances >= 1

    def test_autoscaling_can_be_disabled(self, bench, planner, tiny_w40):
        deployment = planner.plan("aws", "albert", "tf1.15", "managed_ml",
                                  autoscaling=False)
        result = bench.run(deployment, tiny_w40)
        assert result.usage.instances_created == 1

    def test_cost_scales_with_instances(self, bench, planner, tiny_w40):
        one = bench.run(
            planner.plan("aws", "mobilenet", "tf1.15", "managed_ml",
                         autoscaling=False), tiny_w40)
        three = bench.run(
            planner.plan("aws", "mobilenet", "tf1.15", "managed_ml",
                         autoscaling=False, initial_instances=3), tiny_w40)
        assert three.usage.instances_created == 3
        # Per-second cost of the fleet is three times higher even though
        # the single-instance run takes longer to drain its queue.
        assert (three.cost / three.duration_s) > 2.5 * (one.cost / one.duration_s)


class TestVmServers:
    def test_cpu_server_queues_under_load(self, bench, planner, small_w120):
        result = bench.run(
            planner.plan("aws", "mobilenet", "tf1.15", "cpu_server"), small_w120)
        assert result.average_latency > 1.0
        assert result.cost > 0
        assert result.usage.instances_created == 1

    def test_gpu_server_fast_at_low_load(self, bench, planner, tiny_w40):
        result = bench.run(
            planner.plan("aws", "mobilenet", "tf1.15", "gpu_server"), tiny_w40)
        assert result.success_ratio == pytest.approx(1.0)
        assert result.average_latency < 0.3

    def test_gpu_costs_more_than_cpu(self, bench, planner, tiny_w40):
        cpu = bench.run(
            planner.plan("aws", "mobilenet", "tf1.15", "cpu_server"), tiny_w40)
        gpu = bench.run(
            planner.plan("aws", "mobilenet", "tf1.15", "gpu_server"), tiny_w40)
        assert gpu.cost > cpu.cost

    def test_large_model_overwhelms_cpu_server(self, bench, planner,
                                               small_w120):
        result = bench.run(
            planner.plan("aws", "vgg", "tf1.15", "cpu_server"), small_w120)
        assert result.success_ratio < 0.7

    def test_vm_autoscaling_group_launches_instances(self, bench, planner,
                                                     small_w120):
        asg = bench.run(
            planner.plan("aws", "mobilenet", "tf1.15", "cpu_server",
                         autoscaling=True, max_instances=4), small_w120)
        fixed = bench.run(
            planner.plan("aws", "mobilenet", "tf1.15", "cpu_server"), small_w120)
        assert asg.usage.instances_created >= fixed.usage.instances_created

    def test_workers_override(self, bench, planner, tiny_w40):
        wide = bench.run(
            planner.plan("aws", "vgg", "tf1.15", "cpu_server",
                         workers_per_instance=64), tiny_w40)
        narrow = bench.run(
            planner.plan("aws", "vgg", "tf1.15", "cpu_server"), tiny_w40)
        assert wide.success_ratio > narrow.success_ratio


class TestTargetTrackingScaler:
    def _scaler(self, env, demand_value, max_step=100):
        launched = []
        state = {"total": 1}

        def launch(n):
            launched.append(n)
            state["total"] += n

        scaler = TargetTrackingScaler(
            env=env, evaluation_period_s=60.0, target_per_instance=4.0,
            min_instances=1, max_instances=10,
            demand=lambda: demand_value,
            provisioned_total=lambda: state["total"],
            launch=launch, max_scale_step=max_step)
        return scaler, launched

    def test_desired_instances_tracks_demand(self, env):
        scaler, _ = self._scaler(env, demand_value=17.0)
        assert scaler.desired_instances() == 5

    def test_respects_max_instances(self, env):
        scaler, _ = self._scaler(env, demand_value=1000.0)
        assert scaler.desired_instances() == 10

    def test_evaluate_launches_missing(self, env):
        scaler, launched = self._scaler(env, demand_value=17.0)
        assert scaler.evaluate_once() == 4
        assert launched == [4]
        assert scaler.evaluate_once() == 0

    def test_max_scale_step_limits_launches(self, env):
        scaler, launched = self._scaler(env, demand_value=40.0, max_step=1)
        assert scaler.evaluate_once() == 1
        assert launched == [1]

    def test_scale_in_retires_after_cooldown(self, env):
        from repro.platforms.policies import TargetUtilisationPolicy
        state = {"total": 6, "demand": 4.0}
        retired = []

        def retire(n):
            retired.append(n)
            state["total"] -= n

        scaler = TargetTrackingScaler(
            env=env, evaluation_period_s=60.0,
            policy=TargetUtilisationPolicy(
                target_per_instance=4.0, min_instances=1, max_instances=10,
                scale_in_cooldown_s=120.0),
            demand=lambda: state["demand"],
            provisioned_total=lambda: state["total"],
            launch=lambda n: None,
            retire=retire,
            idle=lambda: state["total"])
        # Inside the cooldown window nothing happens...
        env.timeout(60.0)
        env.run()
        assert scaler.evaluate_once() == 0
        assert retired == []
        # ...after it, the surplus above the demand's desired fleet goes.
        env.timeout(120.0)
        env.run()
        assert scaler.evaluate_once() == -5
        assert retired == [5]
        assert state["total"] == 1
        # A retirement is a scaling action: the cooldown restarts.
        assert scaler.evaluate_once() == 0

    def test_no_scale_in_while_a_scale_out_is_in_flight(self, env):
        """The endpoint reports zero retirable idle while warming > 0.

        `provisioned_total` counts warming instances, so without this
        guard the scaler could retire the only *ready* instance against
        capacity that is still minutes from serving.
        """
        from repro.core.planner import Planner
        from repro.platforms.base import build_platform
        platform = build_platform(env, Planner().plan(
            "aws", "mobilenet", "tf1.15", "managed_ml",
            scale_in_cooldown_s=0.0))
        # Bring up the initial fleet by hand (platform.start() would also
        # register the never-ending autoscaler process).
        platform.pool.launch(warm=True)
        platform._resize_workers()
        assert platform._retirable_idle() == platform.pool.idle == 1
        platform._launch_instances(1)  # warming for the next few minutes
        assert platform.pool.warming == 1
        assert platform._retirable_idle() == 0
        env.run()  # bring-up completes -> warming drains
        assert platform.pool.warming == 0
        assert platform._retirable_idle() == 2

    def test_no_scale_in_without_the_hooks(self, env):
        """A policy with a cooldown but no retire hook never scales in."""
        from repro.platforms.policies import TargetUtilisationPolicy
        scaler = TargetTrackingScaler(
            env=env, evaluation_period_s=60.0,
            policy=TargetUtilisationPolicy(
                target_per_instance=4.0, min_instances=1, max_instances=10,
                scale_in_cooldown_s=0.0),
            demand=lambda: 0.0,
            provisioned_total=lambda: 8,
            launch=lambda n: None)
        assert scaler.evaluate_once() == 0

    def test_validation(self, env):
        with pytest.raises(ValueError):
            TargetTrackingScaler(env=env, evaluation_period_s=0,
                                 target_per_instance=1, min_instances=1,
                                 max_instances=1, demand=lambda: 0,
                                 provisioned_total=lambda: 1,
                                 launch=lambda n: None)
        with pytest.raises(ValueError):
            TargetTrackingScaler(env=env, evaluation_period_s=1,
                                 target_per_instance=1, min_instances=5,
                                 max_instances=1, demand=lambda: 0,
                                 provisioned_total=lambda: 1,
                                 launch=lambda n: None)

    def test_explicit_policy_excludes_scalar_fields(self, env):
        from repro.platforms.policies import TargetUtilisationPolicy
        policy = TargetUtilisationPolicy(target_per_instance=4.0,
                                         min_instances=1, max_instances=10)
        # Scalar fields alongside an explicit policy would be silently
        # ignored (e.g. a dead max_scale_step cap), so the mix is rejected.
        with pytest.raises(ValueError, match="not both"):
            TargetTrackingScaler(env=env, evaluation_period_s=60.0,
                                 policy=policy, max_scale_step=5,
                                 demand=lambda: 0,
                                 provisioned_total=lambda: 1,
                                 launch=lambda n: None)
        scaler = TargetTrackingScaler(env=env, evaluation_period_s=60.0,
                                      policy=policy, demand=lambda: 17.0,
                                      provisioned_total=lambda: 1,
                                      launch=lambda n: None)
        assert scaler.desired_instances() == 5


class TestDirectPlatformConstruction:
    def test_build_platform_dispatch(self):
        from repro.platforms import build_platform
        env = Environment()
        for platform, expected in (
                (PlatformKind.SERVERLESS, "ServerlessPlatform"),
                (PlatformKind.MANAGED_ML, "ManagedMlPlatform"),
                (PlatformKind.CPU_SERVER, "VmPlatform"),
                (PlatformKind.GPU_SERVER, "VmPlatform")):
            deployment = Deployment(
                provider=aws(), model=get_model("mobilenet"),
                runtime=get_runtime("tf1.15"),
                config=ServiceConfig(platform=platform))
            assert type(build_platform(env, deployment)).__name__ == expected
