"""Tests for the hybrid spill front door (platforms/hybrid).

Six layers:

* **Config**: the four hybrid knobs validate on `ServiceConfig` and
  stay plain sweepable fields.
* **Ledger**: `HybridMeter` classification — every finished outcome in
  exactly one of the five buckets, `spilled` a routing tally on top.
* **Backends**: the sub-deployment overrides give each path the right
  fault domain (outages strike provisioned only, storms spill only)
  and neutralise hybrid/routing knobs.
* **End to end**: an undersized fleet spills, both paths serve, the
  merged usage keeps the per-path ledgers auditable under
  `provisioned.` / `spill.` prefixes, and the policy knobs
  (`hybrid_max_spill_fraction`, `hybrid_sticky_spill_s`) bind.
* **Determinism and encoding**: hybrid cells are bit-identical serial
  vs `workers=N`, `served_by` survives the packed round trip, and
  non-hybrid tables hash exactly as before the column existed.
* **Closed form**: the simulated blended cost and spill fraction agree
  with `HybridPlanner.routed_percentile` within the documented
  tolerances on three workloads (the planner-vs-simulation check).
"""

import numpy as np
import pytest

from repro.core.benchmark import ServingBenchmark
from repro.core.executor import Executor
from repro.core.planner import Planner
from repro.core.scenario import ScenarioSpec, get_scenario
from repro.platforms.base import build_platform
from repro.platforms.hybrid import (
    HybridMeter,
    HybridServingPlatform,
    _backend_overrides,
    _provisioned_overrides,
    _spill_overrides,
)
from repro.serving.deployment import PlatformKind, ServiceConfig
from repro.serving.records import (
    SERVED_BY_DIRECT,
    SERVED_BY_NAMES,
    SERVED_BY_PROVISIONED,
    SERVED_BY_SPILL,
    RequestOutcome,
)
from repro.sim import Environment, RandomStreams
from repro.tools.hybrid import (
    ROUTED_COST_RTOL,
    ROUTED_SPILL_ATOL,
    validate_routed_plan,
)
from repro.workload.requests import RequestPool

SEED = 5

BUCKETS = ("completed", "failed", "rejected", "timed_out", "shed")


def run_platform(deployment, workload, seed=SEED):
    """Run a cell and return (platform, table) for front-door introspection."""
    env = Environment()
    rng = RandomStreams(seed)
    platform = build_platform(env, deployment, rng=rng)
    pool = RequestPool(sample_payload_mb=deployment.model.input_payload_mb,
                      pool_size=workload.spec.request_pool_size, seed=seed)
    executor = Executor(env=env, platform=platform, workload=workload,
                        request_pool=pool, rng=rng)
    table = executor.run(until=workload.spec.duration_s + 400.0)
    table.fail_unfinished(workload.spec.duration_s + 400.0)
    return platform, table


def assert_conserved(notes, label="", prefix=""):
    """Assert the 5-bucket identity on one (possibly prefixed) ledger."""
    assert notes[f"{prefix}submitted"] == sum(
        notes[f"{prefix}{bucket}"] for bucket in BUCKETS), label


def hybrid_plan(planner, instances=1, **overrides):
    return planner.plan(
        "aws", "mobilenet", "tf1.15", "hybrid",
        hybrid_provisioned_instances=instances, **overrides)


# ---------------------------------------------------------------------------
# Config layer
# ---------------------------------------------------------------------------

class TestHybridConfig:
    def test_defaults_never_spill_by_accident(self):
        config = ServiceConfig()
        assert config.hybrid_provisioned_instances == 1
        assert config.hybrid_spill_watermark == 0.85
        assert config.hybrid_max_spill_fraction == 1.0
        assert config.hybrid_sticky_spill_s == 0.0

    @pytest.mark.parametrize("bad", [
        dict(hybrid_provisioned_instances=0),
        dict(hybrid_spill_watermark=0.0),
        dict(hybrid_spill_watermark=-0.5),
        dict(hybrid_max_spill_fraction=-0.1),
        dict(hybrid_max_spill_fraction=1.5),
        dict(hybrid_sticky_spill_s=-1.0),
    ])
    def test_knobs_validate(self, bad):
        with pytest.raises(ValueError):
            ServiceConfig(**bad)

    def test_knobs_are_sweepable_axes(self):
        from repro.core.study import Sweep
        sweep = Sweep(
            name="knobs",
            base=ScenarioSpec(name="knobs", provider="aws",
                              model="mobilenet",
                              platform=PlatformKind.HYBRID),
            axes={"hybrid_provisioned_instances": (1, 2),
                  "hybrid_spill_watermark": (0.7, 0.9)})
        assert len(sweep.cells()) == 4


# ---------------------------------------------------------------------------
# Ledger layer
# ---------------------------------------------------------------------------

class TestHybridMeter:
    def finished(self, error=None):
        outcome = RequestOutcome(request_id=0, client_id=0, send_time=0.0)
        outcome.finish(time=1.0, success=error is None, error=error or "")
        return outcome

    @pytest.mark.parametrize("error,bucket", [
        (None, "completed"),
        ("timeout", "timed_out"),
        ("shed", "shed"),
        ("throttled", "rejected"),
        ("connection_refused", "rejected"),
        ("crash", "failed"),
        ("service_error", "failed"),
    ])
    def test_each_outcome_lands_in_exactly_one_bucket(self, error, bucket):
        meter = HybridMeter()
        meter.record_submitted()
        meter.classify(self.finished(error))
        notes = meter.notes()
        assert notes[bucket] == 1.0
        assert sum(notes[b] for b in BUCKETS) == 1.0
        assert_conserved(notes)

    def test_spilled_is_a_tally_not_a_bucket(self):
        meter = HybridMeter()
        meter.record_submitted()
        meter.record_spill()
        meter.classify(self.finished())
        notes = meter.notes()
        assert notes["spilled"] == 1.0
        assert notes["completed"] == 1.0
        assert_conserved(notes)


# ---------------------------------------------------------------------------
# Backend composition layer
# ---------------------------------------------------------------------------

class TestBackendOverrides:
    def config(self, **overrides):
        return ServiceConfig(platform=PlatformKind.HYBRID, **overrides)

    def test_outage_strikes_provisioned_fleet_only(self):
        config = self.config(outage_start_s=40.0, outage_duration_s=30.0,
                             outage_fraction=1.0)
        assert "outage_start_s" not in _provisioned_overrides(config)
        assert _spill_overrides(config)["outage_start_s"] is None

    def test_storms_strike_spill_path_only(self):
        config = self.config(storm_times_s=(10.0, 25.0))
        assert _provisioned_overrides(config)["storm_times_s"] == ()
        assert "storm_times_s" not in _spill_overrides(config)

    def test_fleet_size_pins_both_scaling_bounds(self):
        overrides = _provisioned_overrides(
            self.config(hybrid_provisioned_instances=4))
        assert overrides["initial_instances"] == 4
        assert overrides["max_instances"] == 4
        assert overrides["autoscaling"] is False

    def test_hybrid_and_routing_knobs_reset_on_both_paths(self):
        shared = _backend_overrides()
        defaults = ServiceConfig()
        for knob in ("hybrid_provisioned_instances", "hybrid_spill_watermark",
                     "hybrid_max_spill_fraction", "hybrid_sticky_spill_s",
                     "region_count", "breaker_failure_threshold",
                     "hedge_percentile", "brownout_watermark",
                     "retry_attempts"):
            assert shared[knob] == getattr(defaults, knob), knob

    def test_backends_are_plain_platforms(self, planner, env, rng):
        deployment = hybrid_plan(planner)
        platform = build_platform(env, deployment, rng=rng)
        assert isinstance(platform, HybridServingPlatform)
        assert platform.provisioned_backend.config.platform == \
            PlatformKind.CPU_SERVER
        assert platform.spill_backend.config.platform == \
            PlatformKind.SERVERLESS


# ---------------------------------------------------------------------------
# End-to-end layer
# ---------------------------------------------------------------------------

class TestHybridEndToEnd:
    @pytest.fixture(scope="class")
    def spilling_cell(self, request):
        """A one-server fleet under w-120: saturation guaranteed."""
        planner = Planner()
        deployment = hybrid_plan(planner, instances=1,
                                 hybrid_spill_watermark=0.85)
        workload = request.getfixturevalue("small_w120")
        platform, table = run_platform(deployment, workload)
        return platform, table, platform.finalize()

    def test_both_paths_serve(self, spilling_cell):
        _, table, _ = spilling_cell
        assert table.spill_ratio() > 0.0
        served = table.served_by
        assert (served == SERVED_BY_PROVISIONED).any()
        assert (served == SERVED_BY_SPILL).any()
        # The front door tags every request with a hybrid path.
        assert not (served == SERVED_BY_DIRECT).any()

    def test_client_ledger_conserves_and_matches_table(self, spilling_cell):
        platform, table, _ = spilling_cell
        notes = platform.meter.notes()
        assert_conserved(notes)
        assert notes["submitted"] == table.count
        assert notes["completed"] == int(table.success.sum())
        assert notes["spilled"] == int(
            (table.served_by == SERVED_BY_SPILL).sum())

    def test_merged_usage_keeps_per_path_ledgers(self, spilling_cell):
        platform, table, usage = spilling_cell
        for prefix in ("provisioned.", "spill."):
            assert_conserved(usage.notes, label=prefix, prefix=prefix)
        # Each client request was routed to exactly one backend.
        assert (usage.notes["provisioned.submitted"]
                + usage.notes["spill.submitted"]) == table.count
        assert usage.notes["spill.submitted"] == usage.notes["spilled"]

    def test_blended_cost_is_the_sum_of_the_path_breakdowns(
            self, spilling_cell):
        _, _, usage = spilling_cell
        provisioned = sum(v for k, v in usage.cost_breakdown.items()
                          if k.startswith("provisioned."))
        spill = sum(v for k, v in usage.cost_breakdown.items()
                    if k.startswith("spill."))
        assert provisioned > 0.0
        assert spill > 0.0
        assert usage.cost == pytest.approx(provisioned + spill)

    def test_spill_path_pays_per_request_fleet_pays_rent(self, spilling_cell):
        _, _, usage = spilling_cell
        assert "spill.requests" in usage.cost_breakdown
        assert any(k.startswith("provisioned.") and "request" not in k
                   for k in usage.cost_breakdown)

    def test_large_fleet_spills_less_than_small_fleet(self, small_w120):
        planner = Planner()
        ratios = []
        for instances in (1, 8):
            _, table = run_platform(hybrid_plan(planner, instances),
                                    small_w120)
            ratios.append(table.spill_ratio())
        assert ratios[1] < ratios[0]

    def test_max_spill_fraction_caps_the_running_ratio(self, small_w120):
        planner = Planner()
        cap = 0.2
        deployment = hybrid_plan(planner, instances=1,
                                 hybrid_max_spill_fraction=cap)
        platform, table = run_platform(deployment, small_w120)
        notes = platform.meter.notes()
        assert 0.0 < notes["spilled"] <= cap * notes["submitted"]
        assert table.spill_ratio() <= cap

    def test_max_spill_fraction_zero_pins_everything_provisioned(
            self, small_w120):
        planner = Planner()
        deployment = hybrid_plan(planner, instances=1,
                                 hybrid_max_spill_fraction=0.0)
        platform, table = run_platform(deployment, small_w120)
        assert table.spill_ratio() == 0.0
        assert platform.meter.spilled == 0

    def test_sticky_windows_spill_contiguous_runs(self, small_w120):
        """With stickiness on, spills arrive in longer consecutive runs."""
        planner = Planner()
        runs = {}
        for sticky in (0.0, 3.0):
            deployment = hybrid_plan(planner, instances=1,
                                     hybrid_sticky_spill_s=sticky)
            _, table = run_platform(deployment, small_w120)
            order = np.argsort(table.send_time, kind="stable")
            spill = (table.served_by[order] == SERVED_BY_SPILL)
            # Mean length of consecutive spill runs in submit order.
            edges = np.flatnonzero(np.diff(spill.astype(np.int8)))
            segments = np.split(spill, edges + 1)
            lengths = [len(seg) for seg in segments if seg[0]]
            runs[sticky] = float(np.mean(lengths)) if lengths else 0.0
        assert runs[3.0] > runs[0.0]

    def test_spill_survives_a_provisioned_outage(self):
        """The hybrid-outage scenario: spill absorbs the outage window."""
        bench = ServingBenchmark(seed=SEED)
        result = bench.run_scenario("hybrid-outage", scale=0.1)
        table = result.table
        assert table.spill_ratio() > 0.0
        assert float(table.success.mean()) > 0.9
        # The outage struck only the provisioned path's fault injector.
        assert result.usage.notes["spill.completed"] > 0

    def test_registered_scenarios_run_end_to_end(self):
        bench = ServingBenchmark(seed=SEED)
        for name in ("hybrid-burst", "hybrid-steady"):
            result = bench.run_scenario(name, scale=0.05)
            assert result.table.count > 0
            assert_conserved(result.usage.notes)


# ---------------------------------------------------------------------------
# Determinism and encoding layer
# ---------------------------------------------------------------------------

class TestHybridDeterminism:
    def test_hybrid_cells_identical_across_worker_pool(self, tiny_w40):
        planner = Planner()
        deployments = [
            hybrid_plan(planner, instances=1,
                        hybrid_sticky_spill_s=3.0),
            hybrid_plan(planner, instances=2,
                        hybrid_max_spill_fraction=0.5,
                        outage_start_s=10.0, outage_duration_s=15.0,
                        outage_fraction=1.0, retry_attempts=2),
            hybrid_plan(planner, instances=1,
                        storm_times_s=(10.0, 25.0),
                        crash_mtbf_s=30.0),
        ]
        bench = ServingBenchmark(seed=SEED)
        serial = bench.run_many(deployments, tiny_w40)
        parallel = bench.run_many(deployments, tiny_w40, workers=3)
        for left, right in zip(serial, parallel):
            assert left.table.column_hash() == right.table.column_hash()
            assert left.cost == right.cost

    def test_rerun_is_bit_identical(self, tiny_w40):
        deployment = hybrid_plan(Planner(), instances=1,
                                 hybrid_sticky_spill_s=2.0)
        bench = ServingBenchmark(seed=SEED)
        first = bench.run(deployment, tiny_w40)
        second = bench.run(deployment, tiny_w40)
        assert first.table.column_hash() == second.table.column_hash()

    def test_served_by_survives_the_packed_round_trip(self, tiny_w40):
        from repro.serving.outcome_table import OutcomeTable
        deployment = hybrid_plan(Planner(), instances=1)
        _, table = run_platform(deployment, tiny_w40)
        assert table.served_by.any()
        back = OutcomeTable.from_packed(table.packed())
        assert np.array_equal(back.served_by, table.served_by)
        assert back.column_hash() == table.column_hash()

    def test_non_hybrid_tables_elide_the_column(self, tiny_w40):
        from repro.serving.outcome_table import OutcomeTable
        deployment = Planner().plan("aws", "mobilenet", "tf1.15",
                                    "serverless")
        _, table = run_platform(deployment, tiny_w40)
        assert not table.served_by.any()
        assert "served_by" not in table.packed()
        back = OutcomeTable.from_packed(table.packed())
        assert back.column_hash() == table.column_hash()

    def test_served_by_names_cover_the_codes(self):
        assert SERVED_BY_NAMES[SERVED_BY_DIRECT] == "direct"
        assert SERVED_BY_NAMES[SERVED_BY_PROVISIONED] == "provisioned"
        assert SERVED_BY_NAMES[SERVED_BY_SPILL] == "spill"


class TestHybridStreaming:
    def test_streaming_summary_agrees_with_the_full_table(self, tiny_w40):
        deployment = hybrid_plan(Planner(), instances=1)
        full = ServingBenchmark(seed=SEED).run(deployment, tiny_w40)
        streamed = ServingBenchmark(
            seed=SEED, streaming_threshold=0,
            chunk_rows=128).run(deployment, tiny_w40)
        assert streamed.streaming
        summary = streamed.table
        table = full.table
        assert summary.spill_ratio() == pytest.approx(table.spill_ratio())
        for code in (SERVED_BY_PROVISIONED, SERVED_BY_SPILL):
            assert summary.path_latency_mean(code) == pytest.approx(
                table.path_latency_mean(code))


# ---------------------------------------------------------------------------
# Closed-form validation layer (planner vs simulation)
# ---------------------------------------------------------------------------

class TestPlannerValidation:
    """The satellite check: simulation vs `routed_percentile` closed form.

    The tolerances are the documented ones (see ``repro.tools.hybrid``):
    the closed form clips a 1 s rate series at deterministic fleet
    capacity and bills warm serverless prices, the simulation routes on
    instantaneous slot occupancy and bills actual (cold-start-inflated)
    invocation durations.
    """

    CELLS = (
        ("w-40", 80.0, 0.3),
        ("w-120", 60.0, 0.15),
        ("w-200", 80.0, 0.1),
    )

    @pytest.mark.parametrize("workload,percentile,scale", CELLS)
    def test_simulation_matches_the_closed_form(self, workload, percentile,
                                                scale):
        spec = ScenarioSpec(name=f"hybrid-validate-{workload}",
                            provider="aws", model="mobilenet",
                            platform=PlatformKind.HYBRID,
                            workload=workload)
        check = validate_routed_plan(spec, routed_percentile=percentile,
                                     seed=7, scale=scale)
        label = (f"{workload} p{percentile}: cost_err={check.cost_error:.3f} "
                 f"spill_err={check.spill_error:.3f}")
        assert check.within(), label
        assert check.cost_error <= ROUTED_COST_RTOL, label
        assert check.spill_error <= ROUTED_SPILL_ATOL, label

    def test_validation_cell_actually_simulated(self):
        check = validate_routed_plan("hybrid-burst", routed_percentile=60.0,
                                     scale=0.05)
        assert check.plan.routed_cost is not None
        assert check.simulated_cost > 0.0
        assert 0.0 <= check.simulated_spill_fraction <= 1.0

    def test_economics_study_planner_notes_match_the_scenario(self):
        from repro.tools.hybrid import HybridPlanner
        scenario = get_scenario("hybrid-burst")
        planner = HybridPlanner.from_scenario(scenario)
        plan = planner.plan_scenario(scenario, seed=7, scale=0.1)
        assert plan.servers >= 1
        assert 0.0 <= plan.overflow_fraction <= 1.0
        assert plan.best_strategy() in ("hybrid", "serverless", "server")
