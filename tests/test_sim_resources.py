"""Unit tests for Resource and Store."""

import pytest

from repro.sim import Resource, SimulationError, Store


class TestResource:
    def test_capacity_validation(self, env):
        with pytest.raises(SimulationError):
            Resource(env, capacity=0)

    def test_grants_up_to_capacity(self, env):
        resource = Resource(env, capacity=2)
        first = resource.request()
        second = resource.request()
        third = resource.request()
        assert first.triggered and second.triggered
        assert not third.triggered
        assert resource.count == 2
        assert resource.queue_length == 1

    def test_release_grants_next_in_fifo_order(self, env):
        resource = Resource(env, capacity=1)
        first = resource.request()
        second = resource.request()
        third = resource.request()
        resource.release(first)
        assert second.triggered
        assert not third.triggered

    def test_release_unknown_request_rejected(self, env):
        resource = Resource(env, capacity=1)
        resource.request()
        stranger = resource.request()
        with pytest.raises(SimulationError):
            resource.release(stranger)

    def test_cancel_waiting_request(self, env):
        resource = Resource(env, capacity=1)
        held = resource.request()
        waiting = resource.request()
        resource.cancel(waiting)
        resource.release(held)
        assert not waiting.triggered
        assert resource.count == 0

    def test_resize_grants_waiting_requests(self, env):
        resource = Resource(env, capacity=1)
        resource.request()
        waiting = resource.request()
        assert not waiting.triggered
        resource.resize(2)
        assert waiting.triggered
        assert resource.capacity == 2

    def test_resize_validation(self, env):
        resource = Resource(env, capacity=1)
        with pytest.raises(SimulationError):
            resource.resize(0)

    def test_usage_in_processes(self, env):
        """Two workers sharing one slot serialise their critical sections."""
        resource = Resource(env, capacity=1)
        timeline = []

        def worker(name, hold):
            claim = resource.request()
            yield claim
            timeline.append((name, "start", env.now))
            yield env.timeout(hold)
            resource.release(claim)
            timeline.append((name, "end", env.now))

        env.process(worker("a", 2.0))
        env.process(worker("b", 1.0))
        env.run()
        assert timeline == [("a", "start", 0.0), ("a", "end", 2.0),
                            ("b", "start", 2.0), ("b", "end", 3.0)]


class TestStore:
    def test_put_then_get(self, env):
        store = Store(env)
        store.put("x")
        got = store.get()
        assert got.triggered
        assert got.value == "x"

    def test_get_waits_for_put(self, env):
        store = Store(env)
        got = store.get()
        assert not got.triggered
        store.put("late")
        assert got.triggered and got.value == "late"

    def test_fifo_ordering(self, env):
        store = Store(env)
        for item in (1, 2, 3):
            store.put(item)
        values = [store.get().value for _ in range(3)]
        assert values == [1, 2, 3]

    def test_capacity_blocks_puts(self, env):
        store = Store(env, capacity=1)
        first = store.put("a")
        second = store.put("b")
        assert first.triggered
        assert not second.triggered
        store.get()
        assert second.triggered

    def test_capacity_validation(self, env):
        with pytest.raises(SimulationError):
            Store(env, capacity=0)

    def test_cancel_get(self, env):
        store = Store(env)
        pending = store.get()
        store.cancel_get(pending)
        store.put("item")
        # The cancelled get must not consume the item.
        assert store.size == 1
        assert not pending.triggered

    def test_cancel_get_after_grant_is_noop(self, env):
        store = Store(env)
        store.put("x")
        got = store.get()
        store.cancel_get(got)
        assert got.triggered and got.value == "x"

    def test_size_property(self, env):
        store = Store(env)
        assert store.size == 0
        store.put(1)
        store.put(2)
        assert store.size == 2
