"""Tests for the model zoo, calibration profiles, and serving runtimes."""

import pytest

from repro.models.calibration import ColdStartStages, PredictCalibration
from repro.models.profiles import LatencyProfiles
from repro.models.zoo import get_model, list_models, model_zoo
from repro.runtimes import get_runtime, list_runtimes, onnxruntime_14, tensorflow_115
from repro.runtimes.base import ServingRuntime
from repro.runtimes.registry import register_runtime


class TestModelZoo:
    def test_paper_models_present(self):
        assert set(list_models()) == {"albert", "mobilenet", "vgg"}

    def test_model_sizes_match_paper(self):
        assert get_model("mobilenet").artifact_mb == 16.0
        assert get_model("albert").artifact_mb == 51.5
        assert get_model("vgg").artifact_mb == 548.0

    def test_vgg_is_bundled_due_to_tmp_limit(self):
        # AWS Lambda's /tmp is 512 MB; VGG (548 MB) cannot be downloaded.
        vgg = get_model("vgg")
        assert vgg.bundle_in_image
        assert vgg.download_mb == 0.0
        assert get_model("mobilenet").download_mb == 16.0

    def test_lookup_case_insensitive(self):
        assert get_model("MobileNet").name == "mobilenet"

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            get_model("resnet")

    def test_zoo_copy_is_isolated(self):
        zoo = model_zoo()
        zoo.pop("vgg")
        assert "vgg" in model_zoo()


class TestCalibrationDataclasses:
    def test_cold_start_total(self):
        stages = ColdStartStages(4.0, 1.0, 2.0)
        assert stages.total() == 7.0

    def test_predict_calibration_validation(self):
        with pytest.raises(ValueError):
            PredictCalibration(0.0)
        with pytest.raises(ValueError):
            PredictCalibration(0.1, fixed_overhead_s=0.2)


class TestLatencyProfiles:
    def test_every_paper_combination_is_calibrated(self, profiles):
        for provider in ("aws", "gcp"):
            for runtime in ("tf1.15", "ort1.4"):
                for model in ("mobilenet", "albert", "vgg"):
                    assert profiles.supports(provider, runtime, model)

    def test_cold_start_e2e_matches_paper(self, profiles):
        """The calibrated stages must add up to the paper's Figure 10."""
        from repro.cloud import get_provider

        cases = [
            ("aws", "mobilenet", 9.08),
            ("aws", "albert", 9.49),
            ("gcp", "mobilenet", 11.71),
            ("gcp", "albert", 14.19),
        ]
        for provider_name, model_name, expected in cases:
            provider = get_provider(provider_name)
            model = get_model(model_name)
            download = provider.storage.download_time(model.download_mb)
            total = profiles.cold_start_total(
                provider_name, "tf1.15", model, memory_gb=2.0,
                download_time_s=download,
                sandbox_setup_s=provider.serverless.sandbox_setup_s)
            assert total == pytest.approx(expected, rel=0.08)

    def test_ort_cold_start_much_faster(self, profiles):
        tf = profiles.cold_start_stages("aws", "tf1.15", "mobilenet").total()
        ort = profiles.cold_start_stages("aws", "ort1.4", "mobilenet").total()
        assert ort < tf / 2.5

    def test_more_memory_reduces_predict_time(self, profiles):
        small = profiles.warm_predict_time("aws", "tf1.15", "vgg", 2.0)
        large = profiles.warm_predict_time("aws", "tf1.15", "vgg", 8.0)
        assert large < small

    def test_memory_scaling_has_floor(self, profiles):
        """The non-scalable overhead is preserved at huge memory sizes."""
        cal = profiles.serverless_predict_calibration("aws", "tf1.15", "vgg")
        huge = profiles.warm_predict_time("aws", "tf1.15", "vgg", 1024.0)
        assert huge >= cal.fixed_overhead_s

    def test_memory_validation(self, profiles):
        with pytest.raises(ValueError):
            profiles.warm_predict_time("aws", "tf1.15", "vgg", 0.0)

    def test_gpu_much_faster_than_cpu(self, profiles):
        for model in ("mobilenet", "albert", "vgg"):
            assert (profiles.server_predict_time("tf1.15", model, "gpu")
                    < profiles.server_predict_time("tf1.15", model, "cpu") / 5)

    def test_unknown_keys_raise(self, profiles):
        with pytest.raises(KeyError):
            profiles.cold_start_stages("aws", "tf2.9", "mobilenet")
        with pytest.raises(KeyError):
            profiles.server_predict_time("tf1.15", "mobilenet", "tpu")
        with pytest.raises(KeyError):
            profiles.handler_overhead_s("mainframe")

    def test_register_overrides(self, profiles):
        profiles.register_serverless_predict(
            "aws", "tf1.15", "custom", PredictCalibration(0.5, 0.1))
        profiles.register_cold_start("aws", "tf1.15", "custom",
                                     ColdStartStages(1.0, 1.0, 1.0))
        assert profiles.supports("aws", "tf1.15", "custom")
        profiles.register_server_predict("tf1.15", "custom", "cpu",
                                         PredictCalibration(0.9))
        assert profiles.server_predict_time("tf1.15", "custom", "cpu") == 0.9
        with pytest.raises(ValueError):
            profiles.register_server_predict("tf1.15", "custom", "tpu",
                                             PredictCalibration(0.9))


class TestRuntimes:
    def test_builtin_runtimes(self):
        assert set(list_runtimes()) >= {"ort1.4", "tf1.15"}

    def test_image_sizes_match_paper(self):
        tf = tensorflow_115()
        ort = onnxruntime_14()
        assert tf.image_size_mb("aws") == 1238.0
        assert tf.image_size_mb("gcp") == 920.0
        assert ort.image_size_mb("aws") == 391.0
        assert ort.image_size_mb("aws") < tf.image_size_mb("aws")

    def test_managed_support_flags(self):
        assert tensorflow_115().supports_managed_ml("aws")
        assert tensorflow_115().supports_managed_ml("gcp")
        assert not onnxruntime_14().supports_managed_ml("aws")

    def test_unknown_runtime(self):
        with pytest.raises(KeyError):
            get_runtime("torchserve")

    def test_register_custom_runtime(self):
        runtime = ServingRuntime(key="test-rt", display_name="Test",
                                 image_mb={"aws": 100.0})
        register_runtime(runtime)
        assert get_runtime("test-rt").display_name == "Test"

    def test_image_size_unknown_provider(self):
        with pytest.raises(KeyError):
            tensorflow_115().image_size_mb("azure")

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            ServingRuntime(key="", display_name="x")
