"""Tests for the declarative scenario layer (specs, registry, wiring).

The tentpole claim: a new serving scenario is *configuration, not code*.
These tests exercise the spec itself, the registry, the single
construction path (benchmark / experiment context / tools), and the two
shipped config-only scenarios end-to-end.
"""

import pytest

from repro.core.benchmark import ServingBenchmark
from repro.core.planner import Planner
from repro.core.scenario import (
    ScenarioSpec,
    get_scenario,
    list_scenarios,
    register_scenario,
)
from repro.experiments.base import ExperimentContext
from repro.models import LatencyProfiles
from repro.platforms.base import build_platform
from repro.serving.deployment import PlatformKind
from repro.sim import Environment
from repro.tools.cost_estimator import CostEstimator
from repro.tools.hybrid import HybridPlanner
from repro.workload.generator import (
    WorkloadSpec,
    known_workloads,
    register_workload_spec,
    standard_workload,
    workload_spec,
)


class TestScenarioSpec:
    def test_config_normalised_and_hashable(self):
        spec = ScenarioSpec(name="s", provider="aws", model="mobilenet",
                            config={"memory_gb": 4.0, "batch_size": 2})
        assert spec.config == (("batch_size", 2), ("memory_gb", 4.0))
        assert spec.overrides == {"batch_size": 2, "memory_gb": 4.0}
        assert hash(spec)  # usable as a cache key

    def test_mapping_style_access(self):
        spec = ScenarioSpec(name="s", provider="aws", model="mobilenet",
                            config={"memory_gb": 4.0})
        assert spec["provider"] == "aws"
        assert spec["memory_gb"] == 4.0
        with pytest.raises(KeyError):
            spec["nonexistent"]

    def test_unknown_platform_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSpec(name="s", provider="aws", model="mobilenet",
                         platform="mainframe")

    def test_with_config_merges(self):
        spec = ScenarioSpec(name="s", provider="aws", model="mobilenet",
                            config={"memory_gb": 2.0})
        tuned = spec.with_config(memory_gb=8.0, batch_size=4)
        assert tuned.overrides == {"memory_gb": 8.0, "batch_size": 4}
        assert spec.overrides == {"memory_gb": 2.0}  # original untouched

    def test_cell_key_is_stable_and_distinct(self):
        base = ScenarioSpec(name="a", provider="aws", model="mobilenet")
        same = ScenarioSpec(name="b", provider="aws", model="mobilenet")
        other = same.with_config(memory_gb=4.0)
        assert base.cell_key == same.cell_key  # name does not split caches
        assert base.cell_key != other.cell_key

    def test_deployment_resolution(self):
        spec = ScenarioSpec(name="s", provider="aws", model="mobilenet",
                            runtime="ort1.4", platform="serverless",
                            config={"memory_gb": 4.0})
        deployment = spec.deployment()
        assert deployment.provider.name == "aws"
        assert deployment.runtime.key == "ort1.4"
        assert deployment.config.memory_gb == 4.0

    def test_planner_plan_scenario(self):
        deployment = Planner().plan_scenario("provisioned-serverless")
        assert deployment.config.provisioned_concurrency == 8


class TestRegistry:
    def test_shipped_scenarios_registered(self):
        names = list_scenarios()
        assert "provisioned-serverless" in names
        assert "burst-storm" in names
        assert "eager-managed" in names

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError):
            get_scenario("no-such-scenario")

    def test_conflicting_registration_rejected(self):
        spec = get_scenario("burst-storm")
        register_scenario(spec)  # identical re-registration is a no-op
        with pytest.raises(ValueError):
            register_scenario(ScenarioSpec(name="burst-storm",
                                           provider="gcp",
                                           model="mobilenet"))

    def test_workload_registry(self):
        assert "w-storm" in known_workloads()
        spec = workload_spec("w-storm")
        assert spec.high_rate > 200.0
        with pytest.raises(ValueError):
            register_workload_spec(WorkloadSpec(
                name="w-40", high_rate=1.0, low_rate=0.5,
                target_requests=10))
        with pytest.raises(ValueError):
            register_workload_spec(WorkloadSpec(
                name="w-storm", high_rate=1.0, low_rate=0.5,
                target_requests=10))

    def test_storm_workload_generates(self):
        workload = standard_workload("w-storm", seed=3, scale=0.05)
        assert workload.count == workload.spec.target_requests
        assert workload.name == "w-storm"


class TestScenarioExecution:
    def test_burst_storm_runs_end_to_end(self):
        result = ServingBenchmark(seed=7).run_scenario("burst-storm",
                                                       scale=0.04)
        assert result.total_requests > 1000
        assert result.success_ratio > 0.95
        assert result.usage.cold_starts > 0

    def test_provisioned_serverless_runs_end_to_end(self):
        result = ServingBenchmark(seed=7).run_scenario(
            "provisioned-serverless", scale=0.04)
        assert result.usage.cost_breakdown["provisioned"] > 0
        assert result.usage.peak_instances >= 8

    def test_run_scenarios_rejects_duplicate_names(self):
        bench = ServingBenchmark(seed=7)
        anonymous = ScenarioSpec(name="", provider="aws", model="mobilenet")
        with pytest.raises(ValueError, match="distinct"):
            bench.run_scenarios([anonymous,
                                 anonymous.with_config(memory_gb=4.0)])

    def test_storm_separates_serverless_from_managed(self):
        """The config-only storm reproduces the paper's headline split."""
        bench = ServingBenchmark(seed=7)
        results = bench.run_scenarios(["burst-storm", "burst-storm-managed"],
                                      scale=0.04)
        serverless = results["burst-storm"]
        managed = results["burst-storm-managed"]
        assert serverless.success_ratio > managed.success_ratio + 0.3
        assert serverless.total_requests == managed.total_requests

    def test_policy_overrides_reach_the_platforms(self):
        spec = get_scenario("eager-managed")
        platform = build_platform(Environment(), spec.deployment())
        assert platform._scaler.evaluation_period_s == 105.0
        assert platform.policy.target_per_instance == 2.0
        assert platform.policy.max_instances == 8

        serverless = ScenarioSpec(
            name="s", provider="aws", model="mobilenet",
            config={"scale_interval_s": 0.5})
        platform = build_platform(Environment(), serverless.deployment())
        assert platform.policy.interval_s == 0.5

    def test_eager_policy_changes_scaling_behaviour(self):
        """Policy-as-data: the override must actually move the metrics."""
        bench = ServingBenchmark(seed=7)
        eager = bench.run_scenario("eager-managed", scale=0.3)
        default = bench.run_scenario(
            ScenarioSpec(name="default-managed", provider="aws",
                         model="mobilenet", platform=PlatformKind.MANAGED_ML,
                         workload="w-120"),
            scale=0.3)
        assert (eager.usage.instances_created
                > default.usage.instances_created)

    def test_diurnal_scalein_shrinks_the_fleet(self):
        """The config-only scale-in scenario: valleys stop billing.

        At scale 0.3 the first valley (about 330 s) exceeds the 240 s
        cooldown, so the fleet retires down between the two plateaus and
        relaunches for the second one — cheaper than the same cell with
        scale-in disabled, with a visible retire/relaunch cycle.
        """
        bench = ServingBenchmark(seed=7)
        spec = get_scenario("diurnal-scalein")
        scaled_in = bench.run_scenario(spec, scale=0.3)
        static = bench.run_scenario(
            spec.with_config(scale_in_cooldown_s=None), scale=0.3)
        # More launches than the no-scale-in run: retire + relaunch.
        assert (scaled_in.usage.instances_created
                > static.usage.instances_created)
        # The gauge comes back down after the peaks...
        counts = scaled_in.usage.instance_count.values
        assert counts[-1] < max(counts)
        # ...and fewer instance-seconds accrue, so the run is cheaper.
        assert scaled_in.usage.instance_seconds < static.usage.instance_seconds
        assert scaled_in.cost < static.cost
        # The conservation ledger still balances under scale-in.
        notes = scaled_in.usage.notes
        assert notes["submitted"] == (notes["completed"] + notes["failed"]
                                      + notes["rejected"]
                                      + notes["timed_out"] + notes["shed"])

    def test_diurnal_workload_registered(self):
        assert "w-diurnal" in known_workloads()
        spec = workload_spec("w-diurnal")
        assert spec.duration_s == 3600.0
        workload = standard_workload("w-diurnal", seed=3, scale=0.05)
        assert workload.count == workload.spec.target_requests

    def test_experiment_context_runs_scenarios_with_cache(self):
        context = ExperimentContext(seed=7, scale=0.04)
        first = context.run_scenario("burst-storm")
        second = context.run_scenario(get_scenario("burst-storm"))
        assert first is second  # same cache entry either way
        # run_cell goes through the same spec path and cache.
        cell = context.run_cell("aws", "mobilenet", "tf1.15", "serverless",
                                "w-storm")
        assert cell is first


class TestToolsIntegration:
    def test_navigator_candidates_are_scenarios(self):
        from repro.tools.navigator import DesignSpaceNavigator
        navigator = DesignSpaceNavigator(provider="aws", model="mobilenet",
                                         include_servers=True)
        candidates = navigator.candidates()
        assert all(isinstance(candidate, ScenarioSpec)
                   for candidate in candidates)
        kinds = {candidate["platform"] for candidate in candidates}
        assert PlatformKind.CPU_SERVER in kinds

    def test_cost_estimator_prices_a_scenario(self):
        spec = get_scenario("provisioned-serverless")
        estimator = CostEstimator.for_scenario(spec,
                                               profiles=LatencyProfiles())
        estimate = estimator.estimate_scenario(spec)
        assert estimate.requests == spec.workload_spec().target_requests
        assert estimate.total > 0

    def test_cost_estimator_rejects_mismatched_provider(self):
        spec = get_scenario("provisioned-serverless")
        from repro.cloud import gcp
        estimator = CostEstimator(provider=gcp(), profiles=LatencyProfiles())
        with pytest.raises(ValueError):
            estimator.estimate_scenario(spec)

    def test_cost_estimator_rejects_server_scenarios(self):
        spec = get_scenario("burst-storm-managed")
        estimator = CostEstimator.for_scenario(spec)
        with pytest.raises(ValueError):
            estimator.estimate_scenario(spec)

    def test_hybrid_planner_from_scenario(self):
        spec = get_scenario("burst-storm")
        planner = HybridPlanner.from_scenario(spec)
        assert planner.provider.name == "aws"
        assert planner.model.name == "mobilenet"
        plan = planner.plan_scenario(spec, seed=7, scale=0.05)
        assert plan.total_requests > 0
        assert plan.best_strategy() in ("hybrid", "serverless", "server")
