"""Tests for the fault-injection subsystem (core/faults + platform wiring).

Four layers:

* **Spec**: `FaultSpec` / `RetryPolicy` construction from `ServiceConfig`
  knobs — inactive at the defaults, validated when set.
* **Pool**: `InstancePool.kill` semantics — any live state, O(1)
  counters exact, billing stopped at the kill, idempotent.
* **Platform**: crashes, outages, storms, transient errors, and load
  shedding on the real serverless / endpoint platforms, including the
  admission-model split (serverless re-queues in-flight work, endpoints
  fail it back to the client).
* **Determinism**: fault draws come from dedicated named streams, so a
  chaos cell is bit-identical across worker pools, and the SLO
  reductions read a known timeline correctly.
"""

import math

import pytest

from repro.core.benchmark import ServingBenchmark
from repro.core.executor import Executor
from repro.core.faults import (
    BACKOFF_STREAM,
    FaultInjector,
    FaultSpec,
    OutageWindow,
    RetryPolicy,
)
from repro.core.planner import Planner
from repro.platforms.base import build_platform
from repro.platforms.pool import InstancePool, InstanceState
from repro.serving.deployment import ServiceConfig
from repro.serving.outcome_table import OutcomeRecorder, OutcomeTable
from repro.serving.records import RequestOutcome
from repro.sim import Environment, RandomStreams
from repro.workload.requests import RequestPool

SEED = 5


def run_platform(deployment, workload, seed=SEED):
    """Run a cell and return (platform, table) for fleet introspection.

    `ServingBenchmark.run` does not expose the platform, and these
    tests assert on pool counters (`killed`, `ready`, ...) after the
    run, so they drive the executor directly the way the benchmark does.
    """
    env = Environment()
    rng = RandomStreams(seed)
    platform = build_platform(env, deployment, rng=rng)
    pool = RequestPool(sample_payload_mb=deployment.model.input_payload_mb,
                       pool_size=workload.spec.request_pool_size, seed=seed)
    executor = Executor(env=env, platform=platform, workload=workload,
                        request_pool=pool, rng=rng)
    table = executor.run(until=workload.spec.duration_s + 400.0)
    table.fail_unfinished(workload.spec.duration_s + 400.0)
    return platform, table


def error_counts(table):
    counts = {}
    for error in table.error_strings():
        if error:
            counts[error] = counts.get(error, 0) + 1
    return counts


# ---------------------------------------------------------------------------
# Spec layer
# ---------------------------------------------------------------------------

class TestFaultSpec:
    def test_default_config_builds_no_spec(self):
        assert FaultSpec.from_config(ServiceConfig()) is None

    def test_each_knob_activates_the_spec(self):
        for overrides in ({"crash_mtbf_s": 60.0},
                          {"outage_start_s": 10.0},
                          {"storm_times_s": (5.0,)},
                          {"request_error_rate": 0.1}):
            spec = FaultSpec.from_config(ServiceConfig(**overrides))
            assert spec is not None and spec.active, overrides

    def test_outage_window_covers_half_open_interval(self):
        window = OutageWindow(start_s=10.0, duration_s=5.0)
        assert window.end_s == 15.0
        assert not window.covers(9.999)
        assert window.covers(10.0)
        assert window.covers(14.999)
        assert not window.covers(15.0)

    def test_config_validates_fault_knobs(self):
        for bad in ({"crash_mtbf_s": 0.0},
                    {"outage_start_s": -1.0},
                    {"outage_fraction": 1.5},
                    {"request_error_rate": 1.0},
                    {"retry_attempts": 0},
                    {"request_timeout_s": 0.0},
                    {"shed_watermark": -1},
                    {"storm_times_s": (-5.0,)}):
            with pytest.raises(ValueError):
                ServiceConfig(**bad)

    def test_storm_times_are_hashable(self):
        config = ServiceConfig(storm_times_s=[5.0, 10.0])
        assert config.storm_times_s == (5.0, 10.0)
        hash(config)


class TestRetryPolicy:
    def test_disabled_below_two_attempts(self):
        assert RetryPolicy.from_config(ServiceConfig()) is None
        policy = RetryPolicy.from_config(ServiceConfig(retry_attempts=3))
        assert policy is not None and policy.attempts == 3

    def test_backoff_is_capped_jittered_exponential(self):
        policy = RetryPolicy(attempts=5, base_delay_s=0.1, max_delay_s=0.4)
        rng = RandomStreams(SEED)
        for attempt in range(1, 6):
            ceiling = min(0.4, 0.1 * 2 ** (attempt - 1))
            for _ in range(50):
                delay = policy.backoff(rng, attempt)
                assert 0.0 <= delay <= ceiling

    def test_backoff_uses_its_own_named_stream(self):
        policy = RetryPolicy(attempts=3, base_delay_s=0.1, max_delay_s=1.0)
        streams, reference = RandomStreams(SEED), RandomStreams(SEED)
        draws = [policy.backoff(streams, 2) for _ in range(5)]
        expected = [reference.uniform(BACKOFF_STREAM, 0.0, 0.2)
                    for _ in range(5)]
        assert draws == expected


# ---------------------------------------------------------------------------
# Pool kill semantics
# ---------------------------------------------------------------------------

class TestPoolKill:
    def _pool(self):
        return InstancePool(Environment(), keep_records=True)

    def test_kill_busy_instance_keeps_counters_exact(self):
        pool = self._pool()
        instance = pool.launch(warm=True)
        pool.mark_busy(instance)
        pool.env.run(until=10.0)
        pool.kill(instance)
        assert instance.state == InstanceState.RETIRED
        assert not instance.alive
        assert (pool.busy, pool.idle, pool.warming) == (0, 0, 0)
        assert (pool.alive, pool.ready) == (0, 0)
        assert (pool.retired, pool.killed) == (1, 1)

    def test_kill_covers_every_live_state(self):
        pool = self._pool()
        warming = pool.launch(warm=False)
        idle = pool.launch(warm=True)
        busy = pool.launch(warm=True)
        pool.mark_busy(busy)
        for instance in (warming, idle, busy):
            pool.kill(instance)
        assert (pool.warming, pool.idle, pool.busy, pool.alive) == (0, 0, 0, 0)
        assert pool.killed == 3

    def test_kill_stops_instance_hour_billing_at_kill_time(self):
        pool = self._pool()
        instance = pool.launch(warm=True)
        pool.env.run(until=30.0)
        pool.kill(instance)
        assert instance.retire_time == 30.0
        pool.env.run(until=100.0)
        assert pool.instance_seconds(end_time=100.0) == 30.0

    def test_kill_warming_instance_racing_concurrent_scale_out(self):
        # Chaos kills a warming instance while a second scale-out
        # launch is already in flight: the counters must track the two
        # instances independently and billing must stay exact for both.
        pool = self._pool()
        victim = pool.launch(warm=False)
        pool.env.run(until=1.0)
        replacement = pool.launch(warm=False)  # scale-out in flight
        pool.kill(victim)                      # strikes mid-bring-up
        assert (pool.warming, pool.alive) == (1, 1)
        assert (pool.killed, pool.retired) == (1, 1)
        pool.mark_ready(replacement)           # the in-flight launch lands
        assert (pool.warming, pool.idle, pool.ready) == (0, 1, 1)
        pool.env.run(until=10.0)
        pool.retire(replacement)
        # The victim billed [0 s, 1 s); the replacement [1 s, 10 s).
        assert pool.instance_seconds(end_time=10.0) == pytest.approx(10.0)

    def test_double_kill_and_kill_after_retire_are_noops(self):
        pool = self._pool()
        instance = pool.launch(warm=True)
        pool.kill(instance)
        pool.kill(instance)
        assert (pool.retired, pool.killed, pool.alive) == (1, 1, 0)
        retired = pool.launch(warm=True)
        pool.retire(retired)
        pool.kill(retired)
        assert pool.killed == 1


class TestInjectorUnits:
    def test_injector_skips_dead_instances(self):
        env = Environment()
        spec = FaultSpec(outage=OutageWindow(start_s=5.0, duration_s=5.0))
        pool = InstancePool(env, keep_records=True)
        killed = []
        injector = FaultInjector(env, spec, RandomStreams(SEED),
                                 kill=killed.append)
        instance = pool.launch(warm=True)
        injector.watch(instance)
        pool.retire(instance)  # dies of natural causes before the outage
        env.run(until=20.0)
        assert killed == []

    def test_storm_flushes_fire_in_order(self):
        env = Environment()
        spec = FaultSpec(storm_times_s=(4.0, 9.0))
        flushes = []
        injector = FaultInjector(env, spec, RandomStreams(SEED),
                                 kill=lambda instance: None,
                                 flush=lambda: flushes.append(env.now))
        injector.start()
        env.run(until=20.0)
        assert flushes == [4.0, 9.0]


# ---------------------------------------------------------------------------
# Platform integration
# ---------------------------------------------------------------------------

class TestServerlessFaults:
    def test_crashes_requeue_in_flight_work(self, tiny_w40):
        deployment = Planner().plan("aws", "mobilenet", "tf1.15",
                                    "serverless", crash_mtbf_s=20.0)
        platform, table = run_platform(deployment, tiny_w40)
        assert platform.pool.killed > 0
        # Pull-model admission: the crashed sandbox's request goes back
        # into the work queue, so no request is lost to the crash.
        notes = platform.meter.conservation_notes()
        assert notes["submitted"] == table.count
        assert notes["completed"] == int(table.success.sum())
        assert notes["submitted"] == (
            notes["completed"] + notes["failed"] + notes["rejected"]
            + notes["timed_out"] + notes["shed"])

    def test_storms_force_extra_cold_starts(self, tiny_w40):
        planner = Planner()
        quiet = planner.plan("aws", "mobilenet", "tf1.15", "serverless")
        stormy = planner.plan("aws", "mobilenet", "tf1.15", "serverless",
                              storm_times_s=(10.0, 25.0))
        _, quiet_table = run_platform(quiet, tiny_w40)
        stormy_platform, stormy_table = run_platform(stormy, tiny_w40)
        assert stormy_platform.pool.killed > 0
        assert (int(stormy_table.cold_start.sum())
                > int(quiet_table.cold_start.sum()))

    def test_transient_errors_surface_and_retries_absorb_them(self, tiny_w40):
        planner = Planner()
        flaky = planner.plan("aws", "mobilenet", "tf1.15", "serverless",
                             request_error_rate=0.1)
        _, flaky_table = run_platform(flaky, tiny_w40)
        flaky_errors = error_counts(flaky_table)
        assert flaky_errors.get("transient_error", 0) > 0
        resilient = planner.plan("aws", "mobilenet", "tf1.15", "serverless",
                                 request_error_rate=0.1, retry_attempts=4)
        _, resilient_table = run_platform(resilient, tiny_w40)
        flaky_ratio = flaky_table.success.sum() / flaky_table.count
        resilient_ratio = (resilient_table.success.sum()
                           / resilient_table.count)
        assert resilient_ratio > flaky_ratio
        assert resilient_ratio > 0.99


class TestEndpointFaults:
    def test_outage_kills_fleet_and_sheds_load(self, tiny_w40):
        deployment = Planner().plan(
            "aws", "mobilenet", "tf1.15", "managed_ml",
            outage_start_s=10.0, outage_duration_s=15.0,
            outage_fraction=1.0, shed_watermark=1)
        platform, table = run_platform(deployment, tiny_w40)
        assert platform.pool.killed > 0
        errors = error_counts(table)
        # Slot-model admission: in-flight work on the dead instance
        # fails back to the client, and the watermark sheds while no
        # instance is ready.
        assert errors.get("instance_crash", 0) > 0
        assert errors.get("shed", 0) > 0
        notes = platform.meter.finalize(
            pool=platform.pool, end_time=platform.env.now,
            queue=platform.queue).notes
        assert notes["submitted"] == (
            notes["completed"] + notes["failed"] + notes["rejected"]
            + notes["timed_out"] + notes["shed"])
        assert notes["shed"] == errors["shed"]

    def test_killed_instance_stops_billing_at_the_kill(self, tiny_w40):
        deployment = Planner().plan(
            "aws", "mobilenet", "tf1.15", "cpu_server",
            outage_start_s=10.0, outage_duration_s=5.0, outage_fraction=1.0)
        platform, _table = run_platform(deployment, tiny_w40)
        killed = [record for record in platform.pool.records
                  if record.retire_time is not None]
        assert killed
        assert all(record.retire_time >= 10.0 for record in killed)
        # Accrual caps at the kill, not the end of the run.
        horizon = platform.env.now
        accrued = platform.pool.instance_seconds(end_time=horizon)
        naive = sum(horizon - record.launch_time
                    for record in platform.pool.records)
        assert accrued < naive

    def test_kill_during_warming_never_corrupts_counters(self, tiny_w40):
        # The outage window overlaps the autoscaler's relaunches, so
        # some kills land on WARMING instances whose bring-up completes
        # into nothing afterwards.
        deployment = Planner().plan(
            "aws", "mobilenet", "tf1.15", "managed_ml",
            outage_start_s=5.0, outage_duration_s=40.0, outage_fraction=1.0)
        platform, _table = run_platform(deployment, tiny_w40)
        pool = platform.pool
        states = {}
        for record in pool.records:
            states[record.state] = states.get(record.state, 0) + 1
        assert pool.warming == states.get(InstanceState.WARMING, 0)
        assert pool.idle == states.get(InstanceState.IDLE, 0)
        assert pool.busy == states.get(InstanceState.BUSY, 0)
        assert pool.retired == states.get(InstanceState.RETIRED, 0)
        assert pool.alive == pool.warming + pool.idle + pool.busy


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------

class TestFaultDeterminism:
    def test_chaos_cells_identical_across_worker_pool(self, tiny_w40):
        planner = Planner()
        deployments = [
            planner.plan("aws", "mobilenet", "tf1.15", "serverless",
                         crash_mtbf_s=30.0, retry_attempts=3),
            planner.plan("aws", "mobilenet", "tf1.15", "managed_ml",
                         outage_start_s=10.0, outage_duration_s=15.0,
                         outage_fraction=1.0, shed_watermark=1,
                         retry_attempts=2),
            planner.plan("aws", "mobilenet", "tf1.15", "serverless",
                         storm_times_s=(10.0, 25.0),
                         request_error_rate=0.05),
        ]
        bench = ServingBenchmark(seed=SEED)
        serial = bench.run_many(deployments, tiny_w40)
        parallel = bench.run_many(deployments, tiny_w40, workers=3)
        for left, right in zip(serial, parallel):
            assert left.table.column_hash() == right.table.column_hash()
            assert left.cost == right.cost

    def test_same_seed_same_chaos_different_seed_different_chaos(self, tiny_w40):
        deployment = Planner().plan("aws", "mobilenet", "tf1.15",
                                    "serverless", crash_mtbf_s=30.0)
        bench = ServingBenchmark(seed=SEED)
        first = bench.run(deployment, tiny_w40).table.column_hash()
        again = bench.run(deployment, tiny_w40).table.column_hash()
        other = ServingBenchmark(seed=SEED + 1).run(
            deployment, tiny_w40).table.column_hash()
        assert first == again
        assert first != other


# ---------------------------------------------------------------------------
# SLO reductions
# ---------------------------------------------------------------------------

class TestSLOReductions:
    def _table(self, rows):
        """Build a table from (send_time, success) pairs, 0.5 s latency."""
        recorder = OutcomeRecorder(len(rows))
        for index, (send, success) in enumerate(rows):
            outcome = RequestOutcome(request_id=index, client_id=0,
                                     send_time=send)
            recorder.register(outcome)
            outcome.finish(send + 0.5, success,
                           "" if success else "instance_crash")
            recorder.commit(outcome)
        return recorder.table()

    def test_slo_attainment_counts_failures_against_the_target(self):
        table = self._table([(0.0, True), (1.0, True),
                             (2.0, False), (3.0, False)])
        assert table.slo_attainment(1.0) == 0.5
        assert table.slo_attainment(0.1) == 0.0

    def test_empty_table_is_vacuously_healthy(self):
        table = self._table([])
        assert table.slo_attainment(1.0) == 1.0
        assert table.availability() == 1.0

    def test_availability_counts_dark_bins(self):
        # Bins of 10 s over [0, 50): healthy, dead, empty, healthy, dead.
        rows = ([(1.0, True), (2.0, True)]
                + [(11.0, False), (12.0, False)]
                + [(31.0, True)]
                + [(41.0, False), (42.0, True), (43.0, False)])
        table = self._table(rows)
        assert table.availability(bin_s=10.0) == pytest.approx(3 / 5)
        with pytest.raises(ValueError):
            table.availability(bin_s=0.0)

    def test_time_to_recover_finds_first_healthy_bin(self):
        rows = [(5.0, True), (15.0, False), (25.0, False), (35.0, True)]
        table = self._table(rows)
        assert table.time_to_recover(10.0, bin_s=10.0) == 20.0
        # Already healthy at the probe time.
        assert table.time_to_recover(0.0, bin_s=10.0) == 0.0

    def test_time_to_recover_nan_when_never_healthy_again(self):
        rows = [(5.0, True), (15.0, False), (25.0, False)]
        table = self._table(rows)
        assert math.isnan(table.time_to_recover(10.0, bin_s=10.0))

    def test_time_to_recover_at_the_last_recorded_bin_is_finite(self):
        # The only healthy bin is the final one of the horizon: the
        # scan must reach it and report a finite gap, not the NaN
        # never-recovered sentinel.
        rows = [(5.0, True), (15.0, False), (25.0, False),
                (35.0, False), (45.0, True)]
        table = self._table(rows)
        ttr = table.time_to_recover(10.0, bin_s=10.0)
        assert not math.isnan(ttr)
        assert ttr == 30.0


class TestAttemptsColumn:
    def _table(self, attempts_per_row):
        recorder = OutcomeRecorder(len(attempts_per_row))
        for index, attempts in enumerate(attempts_per_row):
            outcome = RequestOutcome(request_id=index, client_id=0,
                                     send_time=float(index))
            recorder.register(outcome)
            outcome.attempts = attempts
            outcome.finish(index + 0.5, True)
            recorder.commit(outcome)
        return recorder.table()

    def test_recorder_commits_the_attempts_column(self):
        table = self._table([1, 3, 2])
        assert table.attempts.tolist() == [1, 3, 2]
        assert table.attempts_mean() == pytest.approx(2.0)
        assert table.row(1).attempts == 3

    def test_retry_free_attempts_preserve_historical_hashes(self):
        # An all-ones attempts column is the pre-column default: it
        # must hash identically to a table that never touched it.
        explicit = self._table([1, 1, 1])
        implicit_recorder = OutcomeRecorder(3)
        for index in range(3):
            outcome = RequestOutcome(request_id=index, client_id=0,
                                     send_time=float(index))
            implicit_recorder.register(outcome)
            outcome.finish(index + 0.5, True)
            implicit_recorder.commit(outcome)
        assert explicit.column_hash() == implicit_recorder.table().column_hash()

    def test_retried_attempts_are_part_of_the_digest(self):
        assert (self._table([1, 1]).column_hash()
                != self._table([1, 2]).column_hash())

    def test_packed_roundtrip_preserves_and_elides_attempts(self):
        retried = self._table([1, 4, 2])
        packed = retried.packed()
        assert "attempts" in packed
        rebuilt = OutcomeTable.from_packed(packed)
        assert rebuilt.attempts.tolist() == [1, 4, 2]
        assert rebuilt.column_hash() == retried.column_hash()
        plain = self._table([1, 1, 1])
        assert "attempts" not in plain.packed()
        assert (OutcomeTable.from_packed(plain.packed()).attempts.tolist()
                == [1, 1, 1])

    def test_retry_wrapper_commits_attempts_end_to_end(self, tiny_w40):
        deployment = Planner().plan(
            "aws", "mobilenet", "tf1.15", "serverless",
            request_error_rate=0.2, retry_attempts=4)
        _, table = run_platform(deployment, tiny_w40)
        assert int(table.attempts.max()) > 1
        assert table.attempts_mean() > 1.0
        # The headline reduction matches the raw column.
        assert table.attempts_mean() == pytest.approx(
            float(table.attempts.mean()))
