"""Tests for the extension tools (navigator, tuner, batching, hybrid, cost)."""

import pytest

from repro.cloud import aws, gcp
from repro.models import LatencyProfiles, get_model
from repro.runtimes import get_runtime
from repro.tools import (
    AdaptiveBatchingPolicy,
    CostEstimator,
    DecomposedCostEstimate,
    DesignSpaceNavigator,
    HybridPlanner,
    MemoryTuner,
    NavigationConstraints,
)
from repro.workload.generator import standard_workload


@pytest.fixture
def estimator():
    return CostEstimator(provider=aws(), profiles=LatencyProfiles())


class TestCostEstimator:
    def test_serverless_estimate_components(self, estimator):
        estimate = estimator.serverless(get_model("mobilenet"),
                                        get_runtime("tf1.15"), 15_000)
        assert estimate.total == pytest.approx(
            estimate.execution_cost + estimate.request_cost)
        assert estimate.total > 0
        assert estimate.billed_seconds > 0

    def test_estimate_scales_with_requests(self, estimator):
        small = estimator.serverless(get_model("mobilenet"),
                                     get_runtime("tf1.15"), 1_000).total
        large = estimator.serverless(get_model("mobilenet"),
                                     get_runtime("tf1.15"), 100_000).total
        assert large > 50 * small

    def test_estimate_in_paper_ballpark(self, estimator):
        """AWS MobileNet w-40 cost ~ $0.05 in Table 1."""
        estimate = estimator.serverless(get_model("mobilenet"),
                                        get_runtime("tf1.15"), 15_000)
        assert 0.01 < estimate.total < 0.15

    def test_gcp_cold_fraction_matters(self):
        gcp_estimator = CostEstimator(provider=gcp(), profiles=LatencyProfiles())
        cheap = gcp_estimator.serverless(get_model("mobilenet"),
                                         get_runtime("tf1.15"), 10_000,
                                         cold_start_fraction=0.0).total
        pricey = gcp_estimator.serverless(get_model("mobilenet"),
                                          get_runtime("tf1.15"), 10_000,
                                          cold_start_fraction=0.05).total
        assert pricey > cheap

    def test_vm_and_managed_estimates(self, estimator):
        assert estimator.vm("m5.2xlarge", 3600) == pytest.approx(0.384)
        assert estimator.managed_ml(None, 3600, instances=2) == pytest.approx(1.12)

    def test_capacity_estimates(self, estimator):
        cpu = estimator.server_capacity_rps(get_model("mobilenet"),
                                            get_runtime("tf1.15"), "cpu", 8)
        gpu = estimator.server_capacity_rps(get_model("mobilenet"),
                                            get_runtime("tf1.15"), "gpu", 1)
        assert gpu > cpu > 1

    def test_validation(self, estimator):
        with pytest.raises(ValueError):
            estimator.serverless(get_model("vgg"), get_runtime("tf1.15"), -1)
        with pytest.raises(ValueError):
            estimator.vm("m5.2xlarge", -10)


class TestHybridPlanner:
    def test_plan_structure(self):
        planner = HybridPlanner(provider=aws(), model=get_model("mobilenet"),
                                runtime=get_runtime("tf1.15"))
        workload = standard_workload("w-120", seed=2, scale=0.15)
        plan = planner.plan(workload.trace)
        assert plan.servers >= 1
        assert 0 <= plan.overflow_fraction <= 1
        assert plan.hybrid_cost == pytest.approx(
            plan.server_cost + plan.serverless_overflow_cost)
        assert plan.best_strategy() in ("hybrid", "serverless", "server")

    def test_pure_server_sized_for_peak(self):
        planner = HybridPlanner(provider=aws(), model=get_model("vgg"),
                                runtime=get_runtime("tf1.15"))
        workload = standard_workload("w-200", seed=2, scale=0.1)
        plan = planner.plan(workload.trace)
        assert plan.pure_server_instances >= plan.servers
        assert plan.pure_server_cost >= plan.server_cost

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            HybridPlanner(provider=aws(), model=get_model("vgg"),
                          runtime=get_runtime("tf1.15"),
                          base_load_percentile=0.0)


class TestAdaptiveBatching:
    def test_latency_grows_with_batch(self):
        policy = AdaptiveBatchingPolicy(provider="aws", model="mobilenet",
                                        runtime="ort1.4", latency_slo_s=1.0)
        assert (policy.expected_latency(8, 40.0)
                > policy.expected_latency(1, 40.0))

    def test_decision_respects_slo(self):
        policy = AdaptiveBatchingPolicy(provider="aws", model="vgg",
                                        runtime="tf1.15", latency_slo_s=2.0)
        decision = policy.decide(100.0)
        assert decision.expected_latency_s <= 2.0 or decision.batch_size == 1

    def test_higher_rate_allows_bigger_batches(self):
        policy = AdaptiveBatchingPolicy(provider="aws", model="mobilenet",
                                        runtime="ort1.4", latency_slo_s=0.5)
        slow = policy.decide(2.0).batch_size
        fast = policy.decide(200.0).batch_size
        assert fast >= slow

    def test_decision_schedule(self):
        policy = AdaptiveBatchingPolicy(provider="aws", model="mobilenet",
                                        runtime="ort1.4", latency_slo_s=0.5)
        schedule = policy.decision_schedule([5.0, 50.0, 150.0])
        assert len(schedule) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveBatchingPolicy(provider="aws", model="vgg",
                                   runtime="tf1.15", latency_slo_s=0.0)
        policy = AdaptiveBatchingPolicy(provider="aws", model="vgg",
                                        runtime="tf1.15", latency_slo_s=1.0)
        with pytest.raises(ValueError):
            policy.expected_latency(0, 10.0)
        with pytest.raises(ValueError):
            policy.expected_latency(1, 0.0)

    def test_evaluate_on_simulator(self):
        policy = AdaptiveBatchingPolicy(provider="aws", model="mobilenet",
                                        runtime="ort1.4", latency_slo_s=1.0)
        workload = standard_workload("w-40", seed=4, scale=0.05)
        outcome = policy.evaluate(workload)
        assert outcome["batch_size"] >= 1
        assert outcome["cost_usd"] > 0


class TestMemoryTuner:
    def test_tuning_prefers_larger_memory_for_vgg_latency_target(self):
        tuner = MemoryTuner()
        workload = standard_workload("w-40", seed=4, scale=0.05)
        outcome = tuner.tune("aws", "vgg", "tf1.15", workload,
                             candidates_gb=(2.0, 8.0),
                             latency_target_s=1.0)
        assert outcome.rows[0]["memory_gb"] == 2.0
        if outcome.met_target:
            assert outcome.best_memory_gb == 8.0

    def test_without_target_picks_balanced_option(self):
        tuner = MemoryTuner()
        workload = standard_workload("w-40", seed=4, scale=0.05)
        outcome = tuner.tune("aws", "mobilenet", "ort1.4", workload,
                             candidates_gb=(2.0, 4.0))
        assert outcome.best_memory_gb in (2.0, 4.0)
        assert len(outcome.rows) == 2

    def test_empty_candidates_rejected(self):
        tuner = MemoryTuner()
        workload = standard_workload("w-40", seed=4, scale=0.05)
        with pytest.raises(ValueError):
            tuner.tune("aws", "vgg", "tf1.15", workload, candidates_gb=())


class TestNavigator:
    def test_constraints_validation(self):
        with pytest.raises(ValueError):
            NavigationConstraints(objective="throughput")
        with pytest.raises(ValueError):
            NavigationConstraints(min_success_ratio=1.5)

    def test_constraint_checks(self):
        constraints = NavigationConstraints(max_latency_s=1.0,
                                            max_cost_usd=0.5)
        assert constraints.is_satisfied(0.5, 1.0, 0.1)
        assert not constraints.is_satisfied(2.0, 1.0, 0.1)
        assert not constraints.is_satisfied(0.5, 0.9, 0.1)
        assert not constraints.is_satisfied(0.5, 1.0, 0.9)

    def test_search_finds_feasible_configuration(self):
        navigator = DesignSpaceNavigator(provider="aws", model="mobilenet",
                                         memory_sizes_gb=(2.0,),
                                         batch_sizes=(1,))
        workload = standard_workload("w-40", seed=4, scale=0.05)
        outcome = navigator.search(workload,
                                   NavigationConstraints(max_latency_s=1.0))
        assert outcome.found
        assert outcome.best["feasible"]
        assert len(outcome.evaluated) == 2  # two runtimes

    def test_infeasible_constraints_yield_no_best(self):
        navigator = DesignSpaceNavigator(provider="aws", model="vgg",
                                         runtimes=("tf1.15",),
                                         memory_sizes_gb=(2.0,),
                                         batch_sizes=(1,))
        workload = standard_workload("w-40", seed=4, scale=0.05)
        outcome = navigator.search(
            workload, NavigationConstraints(max_latency_s=0.001))
        assert not outcome.found
        assert outcome.evaluated

    def test_candidate_grid_with_servers(self):
        navigator = DesignSpaceNavigator(provider="aws", model="mobilenet",
                                         include_servers=True)
        kinds = {candidate["platform"] for candidate in navigator.candidates()}
        assert "cpu_server" in kinds and "gpu_server" in kinds


class TestDecomposedEstimator:
    """The decomposed closed form the halving search's rung 0 ranks with."""

    def _scenario(self, name="dec", provider="aws", **config):
        from repro.core.scenario import ScenarioSpec
        return ScenarioSpec(name=name, provider=provider, model="mobilenet",
                            workload="w-40", config=config)

    def test_components_sum_to_blended_total(self, estimator):
        estimate = estimator.serverless_decomposed(
            get_model("mobilenet"), get_runtime("tf1.15"), 15_000)
        assert isinstance(estimate, DecomposedCostEstimate)
        assert estimate.total == pytest.approx(
            estimate.compute_cost + estimate.transfer_cost
            + estimate.memory_cost + estimate.request_cost)
        assert estimate.compute_cost > 0
        assert estimate.transfer_cost > 0
        assert estimate.memory_cost > 0
        assert estimate.request_cost > 0
        # Carbon is a proxy column, never part of the dollar sum.
        assert estimate.carbon_kg > 0
        assert estimate.carbon_kg < estimate.total
        assert estimate.fanout == 1.0

    def test_fanout_multiplies_every_component(self, estimator):
        from repro.serving.deployment import ServiceConfig
        plain = estimator.serverless_decomposed(
            get_model("mobilenet"), get_runtime("tf1.15"), 10_000)
        config = ServiceConfig(request_error_rate=0.05, retry_attempts=3,
                               hedge_percentile=95.0)
        fanned = estimator.serverless_decomposed(
            get_model("mobilenet"), get_runtime("tf1.15"), 10_000,
            config=config)
        expected = CostEstimator.fanout_multiplier(config)
        assert expected > 1.0
        assert fanned.fanout == pytest.approx(expected)
        for name in ("compute_cost", "transfer_cost", "memory_cost",
                     "request_cost", "gb_seconds", "carbon_kg"):
            assert getattr(fanned, name) == pytest.approx(
                getattr(plain, name) * expected), name

    def test_fanout_multiplier_closed_form(self):
        assert CostEstimator.fanout_multiplier(None) == 1.0
        from repro.serving.deployment import ServiceConfig
        retries = ServiceConfig(request_error_rate=0.1, retry_attempts=2)
        # 1 + p for a two-attempt chain.
        assert CostEstimator.fanout_multiplier(retries) == pytest.approx(1.1)
        hedged = ServiceConfig(hedge_percentile=99.0)
        assert CostEstimator.fanout_multiplier(hedged) == pytest.approx(1.01)

    def test_estimate_scenario_decomposed_resolves_references(self,
                                                              estimator):
        estimate = estimator.estimate_scenario_decomposed(self._scenario())
        direct = estimator.serverless_decomposed(
            get_model("mobilenet"), get_runtime("tf1.15"),
            self._scenario().workload_spec().target_requests)
        assert estimate.total == pytest.approx(direct.total)
        with pytest.raises(ValueError, match="provider"):
            estimator.estimate_scenario_decomposed(
                self._scenario(provider="gcp"))

    def _annotated_frame(self, specs):
        from repro.core.study import ResultFrame
        rows = [{**spec.as_row(), "cost_usd": 1.0} for spec in specs]
        frame = ResultFrame.from_rows(rows, name="dec", specs=specs)
        return CostEstimator.annotate_frame(frame)

    def test_annotate_frame_decomposed_columns(self, estimator):
        specs = [self._scenario(name=f"dec/{memory}", memory_gb=memory)
                 for memory in (2.0, 4.0, 8.0)]
        frame = self._annotated_frame(specs)
        for name in ("est_cost_usd", "est_transfer_usd", "est_memory_usd",
                     "est_fanout", "est_carbon_kg"):
            assert name in frame.columns, name
        for row, spec in zip(frame.to_rows(), specs):
            estimate = estimator.estimate_scenario_decomposed(spec)
            assert row["est_cost_usd"] == pytest.approx(estimate.total)
            assert row["est_transfer_usd"] == pytest.approx(
                estimate.transfer_cost)
            assert row["est_memory_usd"] == pytest.approx(
                estimate.memory_cost)
            assert row["est_fanout"] == pytest.approx(estimate.fanout)
            assert row["est_carbon_kg"] == pytest.approx(estimate.carbon_kg)
            # Explicit components never exceed the blended total.
            assert (row["est_transfer_usd"] + row["est_memory_usd"]
                    < row["est_cost_usd"])

    def test_annotate_frame_ranking_stable_across_equivalent_frames(self):
        specs = [self._scenario(name=f"dec/{memory}", memory_gb=memory)
                 for memory in (2.0, 4.0, 8.0)]
        forward = self._annotated_frame(specs)
        backward = self._annotated_frame(list(reversed(specs)))

        def ranking(frame):
            return [row["scenario"] for row in sorted(
                frame.to_rows(),
                key=lambda row: (row["est_cost_usd"], row["scenario"]))]

        assert ranking(forward) == ranking(backward)

    def test_annotate_frame_server_rows_are_none(self):
        from repro.core.scenario import ScenarioSpec
        specs = [self._scenario(),
                 ScenarioSpec(name="dec/server", provider="aws",
                              model="mobilenet", workload="w-40",
                              platform="cpu_server")]
        frame = self._annotated_frame(specs)
        rows = frame.to_rows()
        assert rows[0]["est_cost_usd"] is not None
        for name in ("est_cost_usd", "est_transfer_usd", "est_memory_usd",
                     "est_fanout", "est_carbon_kg"):
            assert rows[1][name] is None, name


class TestNavigatorEmptyPrefilter:
    """Satellite fix: an emptied candidate space keeps its schema."""

    def _emptied(self):
        return DesignSpaceNavigator(provider="aws", model="mobilenet",
                                    prefilter=lambda labels: False)

    def test_emptied_sweep_yields_declared_columns(self):
        navigator = self._emptied()
        workload = standard_workload("w-40", seed=4, scale=0.04)
        result = navigator.search(workload, NavigationConstraints())
        assert not result.found
        assert result.evaluated == []
        assert len(result.frame) == 0
        # The declared schema survives: the feasible column (the bug),
        # the axes, and the standard metric columns all present.
        from repro.core.study import STANDARD_METRIC_COLUMNS
        columns = set(result.frame.columns)
        assert "feasible" in columns
        assert {"runtime", "memory_gb", "batch_size"} <= columns
        assert set(STANDARD_METRIC_COLUMNS) <= columns
        assert result.frame.meta["constrained_out"] == \
            {"nav/aws/mobilenet": 18}

    def test_emptied_sweep_frame_still_slices(self):
        navigator = self._emptied()
        workload = standard_workload("w-40", seed=4, scale=0.04)
        frame = navigator.search(workload, NavigationConstraints()).frame
        assert frame.to_rows() == []
        selected = frame.select("runtime", "cost_usd", "feasible")
        assert len(selected) == 0

    def test_partial_prefilter_still_runs_survivors(self):
        navigator = DesignSpaceNavigator(
            provider="aws", model="mobilenet",
            runtimes=("tf1.15",), memory_sizes_gb=(2.0, 4.0),
            batch_sizes=(1,),
            prefilter=lambda labels: labels["memory_gb"] == 2.0)
        workload = standard_workload("w-40", seed=4, scale=0.04)
        result = navigator.search(workload, NavigationConstraints())
        assert len(result.evaluated) == 1
        assert result.evaluated[0]["memory_gb"] == 2.0
        assert result.frame.meta["constrained_out"] == \
            {"nav/aws/mobilenet": 1}
