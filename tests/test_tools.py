"""Tests for the extension tools (navigator, tuner, batching, hybrid, cost)."""

import pytest

from repro.cloud import aws, gcp
from repro.models import LatencyProfiles, get_model
from repro.runtimes import get_runtime
from repro.tools import (
    AdaptiveBatchingPolicy,
    CostEstimator,
    DesignSpaceNavigator,
    HybridPlanner,
    MemoryTuner,
    NavigationConstraints,
)
from repro.workload.generator import standard_workload


@pytest.fixture
def estimator():
    return CostEstimator(provider=aws(), profiles=LatencyProfiles())


class TestCostEstimator:
    def test_serverless_estimate_components(self, estimator):
        estimate = estimator.serverless(get_model("mobilenet"),
                                        get_runtime("tf1.15"), 15_000)
        assert estimate.total == pytest.approx(
            estimate.execution_cost + estimate.request_cost)
        assert estimate.total > 0
        assert estimate.billed_seconds > 0

    def test_estimate_scales_with_requests(self, estimator):
        small = estimator.serverless(get_model("mobilenet"),
                                     get_runtime("tf1.15"), 1_000).total
        large = estimator.serverless(get_model("mobilenet"),
                                     get_runtime("tf1.15"), 100_000).total
        assert large > 50 * small

    def test_estimate_in_paper_ballpark(self, estimator):
        """AWS MobileNet w-40 cost ~ $0.05 in Table 1."""
        estimate = estimator.serverless(get_model("mobilenet"),
                                        get_runtime("tf1.15"), 15_000)
        assert 0.01 < estimate.total < 0.15

    def test_gcp_cold_fraction_matters(self):
        gcp_estimator = CostEstimator(provider=gcp(), profiles=LatencyProfiles())
        cheap = gcp_estimator.serverless(get_model("mobilenet"),
                                         get_runtime("tf1.15"), 10_000,
                                         cold_start_fraction=0.0).total
        pricey = gcp_estimator.serverless(get_model("mobilenet"),
                                          get_runtime("tf1.15"), 10_000,
                                          cold_start_fraction=0.05).total
        assert pricey > cheap

    def test_vm_and_managed_estimates(self, estimator):
        assert estimator.vm("m5.2xlarge", 3600) == pytest.approx(0.384)
        assert estimator.managed_ml(None, 3600, instances=2) == pytest.approx(1.12)

    def test_capacity_estimates(self, estimator):
        cpu = estimator.server_capacity_rps(get_model("mobilenet"),
                                            get_runtime("tf1.15"), "cpu", 8)
        gpu = estimator.server_capacity_rps(get_model("mobilenet"),
                                            get_runtime("tf1.15"), "gpu", 1)
        assert gpu > cpu > 1

    def test_validation(self, estimator):
        with pytest.raises(ValueError):
            estimator.serverless(get_model("vgg"), get_runtime("tf1.15"), -1)
        with pytest.raises(ValueError):
            estimator.vm("m5.2xlarge", -10)


class TestHybridPlanner:
    def test_plan_structure(self):
        planner = HybridPlanner(provider=aws(), model=get_model("mobilenet"),
                                runtime=get_runtime("tf1.15"))
        workload = standard_workload("w-120", seed=2, scale=0.15)
        plan = planner.plan(workload.trace)
        assert plan.servers >= 1
        assert 0 <= plan.overflow_fraction <= 1
        assert plan.hybrid_cost == pytest.approx(
            plan.server_cost + plan.serverless_overflow_cost)
        assert plan.best_strategy() in ("hybrid", "serverless", "server")

    def test_pure_server_sized_for_peak(self):
        planner = HybridPlanner(provider=aws(), model=get_model("vgg"),
                                runtime=get_runtime("tf1.15"))
        workload = standard_workload("w-200", seed=2, scale=0.1)
        plan = planner.plan(workload.trace)
        assert plan.pure_server_instances >= plan.servers
        assert plan.pure_server_cost >= plan.server_cost

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            HybridPlanner(provider=aws(), model=get_model("vgg"),
                          runtime=get_runtime("tf1.15"),
                          base_load_percentile=0.0)


class TestAdaptiveBatching:
    def test_latency_grows_with_batch(self):
        policy = AdaptiveBatchingPolicy(provider="aws", model="mobilenet",
                                        runtime="ort1.4", latency_slo_s=1.0)
        assert (policy.expected_latency(8, 40.0)
                > policy.expected_latency(1, 40.0))

    def test_decision_respects_slo(self):
        policy = AdaptiveBatchingPolicy(provider="aws", model="vgg",
                                        runtime="tf1.15", latency_slo_s=2.0)
        decision = policy.decide(100.0)
        assert decision.expected_latency_s <= 2.0 or decision.batch_size == 1

    def test_higher_rate_allows_bigger_batches(self):
        policy = AdaptiveBatchingPolicy(provider="aws", model="mobilenet",
                                        runtime="ort1.4", latency_slo_s=0.5)
        slow = policy.decide(2.0).batch_size
        fast = policy.decide(200.0).batch_size
        assert fast >= slow

    def test_decision_schedule(self):
        policy = AdaptiveBatchingPolicy(provider="aws", model="mobilenet",
                                        runtime="ort1.4", latency_slo_s=0.5)
        schedule = policy.decision_schedule([5.0, 50.0, 150.0])
        assert len(schedule) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveBatchingPolicy(provider="aws", model="vgg",
                                   runtime="tf1.15", latency_slo_s=0.0)
        policy = AdaptiveBatchingPolicy(provider="aws", model="vgg",
                                        runtime="tf1.15", latency_slo_s=1.0)
        with pytest.raises(ValueError):
            policy.expected_latency(0, 10.0)
        with pytest.raises(ValueError):
            policy.expected_latency(1, 0.0)

    def test_evaluate_on_simulator(self):
        policy = AdaptiveBatchingPolicy(provider="aws", model="mobilenet",
                                        runtime="ort1.4", latency_slo_s=1.0)
        workload = standard_workload("w-40", seed=4, scale=0.05)
        outcome = policy.evaluate(workload)
        assert outcome["batch_size"] >= 1
        assert outcome["cost_usd"] > 0


class TestMemoryTuner:
    def test_tuning_prefers_larger_memory_for_vgg_latency_target(self):
        tuner = MemoryTuner()
        workload = standard_workload("w-40", seed=4, scale=0.05)
        outcome = tuner.tune("aws", "vgg", "tf1.15", workload,
                             candidates_gb=(2.0, 8.0),
                             latency_target_s=1.0)
        assert outcome.rows[0]["memory_gb"] == 2.0
        if outcome.met_target:
            assert outcome.best_memory_gb == 8.0

    def test_without_target_picks_balanced_option(self):
        tuner = MemoryTuner()
        workload = standard_workload("w-40", seed=4, scale=0.05)
        outcome = tuner.tune("aws", "mobilenet", "ort1.4", workload,
                             candidates_gb=(2.0, 4.0))
        assert outcome.best_memory_gb in (2.0, 4.0)
        assert len(outcome.rows) == 2

    def test_empty_candidates_rejected(self):
        tuner = MemoryTuner()
        workload = standard_workload("w-40", seed=4, scale=0.05)
        with pytest.raises(ValueError):
            tuner.tune("aws", "vgg", "tf1.15", workload, candidates_gb=())


class TestNavigator:
    def test_constraints_validation(self):
        with pytest.raises(ValueError):
            NavigationConstraints(objective="throughput")
        with pytest.raises(ValueError):
            NavigationConstraints(min_success_ratio=1.5)

    def test_constraint_checks(self):
        constraints = NavigationConstraints(max_latency_s=1.0,
                                            max_cost_usd=0.5)
        assert constraints.is_satisfied(0.5, 1.0, 0.1)
        assert not constraints.is_satisfied(2.0, 1.0, 0.1)
        assert not constraints.is_satisfied(0.5, 0.9, 0.1)
        assert not constraints.is_satisfied(0.5, 1.0, 0.9)

    def test_search_finds_feasible_configuration(self):
        navigator = DesignSpaceNavigator(provider="aws", model="mobilenet",
                                         memory_sizes_gb=(2.0,),
                                         batch_sizes=(1,))
        workload = standard_workload("w-40", seed=4, scale=0.05)
        outcome = navigator.search(workload,
                                   NavigationConstraints(max_latency_s=1.0))
        assert outcome.found
        assert outcome.best["feasible"]
        assert len(outcome.evaluated) == 2  # two runtimes

    def test_infeasible_constraints_yield_no_best(self):
        navigator = DesignSpaceNavigator(provider="aws", model="vgg",
                                         runtimes=("tf1.15",),
                                         memory_sizes_gb=(2.0,),
                                         batch_sizes=(1,))
        workload = standard_workload("w-40", seed=4, scale=0.05)
        outcome = navigator.search(
            workload, NavigationConstraints(max_latency_s=0.001))
        assert not outcome.found
        assert outcome.evaluated

    def test_candidate_grid_with_servers(self):
        navigator = DesignSpaceNavigator(provider="aws", model="mobilenet",
                                         include_servers=True)
        kinds = {candidate["platform"] for candidate in navigator.candidates()}
        assert "cpu_server" in kinds and "gpu_server" in kinds
