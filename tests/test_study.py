"""Tests for the study layer: Sweep grids, ResultFrame, Study execution.

Four layers of guarantees:

* **Grid expansion** — axis ordering, zipped axes, override collisions,
  ``cell_key`` uniqueness: the flat unit-of-work list is exactly the
  declared product, in the declared order.
* **Frame algebra** — select / where / pivot / to_rows / to_csv over
  synthetic rows, independent of any simulation.
* **Reduction equivalence** — on the 14-cell golden matrix (the same
  cells ``tests/data/golden_hashes.json`` gates), every ResultFrame
  column equals the corresponding per-cell :class:`RunResult` metric,
  and the outcome-column hashes stay bit-identical through the frame
  path.
* **Execution** — Study.run uses the shared context cache, filters by
  provider, attaches named series, and the ``repro.api`` facade and CLI
  expose it all.
"""

import json
import os

import pytest

from repro.api import run, run_study
from repro.core.benchmark import ServingBenchmark
from repro.core.planner import Planner
from repro.core.scenario import ScenarioSpec, get_scenario
from repro.core.study import (
    ResultFrame,
    Study,
    Sweep,
    get_study,
    list_studies,
    register_study,
)
from repro.experiments.base import (
    ExperimentContext,
    instance_series,
    load_registered_studies,
)
from repro.workload.generator import standard_workload

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "data",
                           "golden_hashes.json")

with open(GOLDEN_PATH, "r", encoding="utf-8") as _handle:
    GOLDEN = json.load(_handle)


def _base(**overrides) -> ScenarioSpec:
    defaults = dict(name="t", provider="aws", model="mobilenet")
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


# ---------------------------------------------------------------------------
# Sweep grid expansion
# ---------------------------------------------------------------------------

class TestSweepExpansion:
    def test_axis_ordering_first_axis_outermost(self):
        sweep = Sweep(name="s", base=_base(),
                      axes={"runtime": ("tf1.15", "ort1.4"),
                            "memory_gb": (2.0, 4.0)})
        labels = [(c.labels["runtime"], c.labels["memory_gb"])
                  for c in sweep.cells()]
        assert labels == [("tf1.15", 2.0), ("tf1.15", 4.0),
                          ("ort1.4", 2.0), ("ort1.4", 4.0)]
        assert len(sweep) == 4
        assert sweep.axis_names == ("runtime", "memory_gb")

    def test_spec_axes_set_fields_config_axes_set_overrides(self):
        sweep = Sweep(name="s", base=_base(),
                      axes={"provider": ("aws", "gcp"),
                            "batch_size": (1, 2)})
        cells = sweep.cells()
        assert cells[0].spec.provider == "aws"
        assert cells[0].spec.overrides == {"batch_size": 1}
        assert cells[-1].spec.provider == "gcp"
        assert cells[-1].spec.overrides == {"batch_size": 2}

    def test_zipped_axis_moves_dimensions_together(self):
        sweep = Sweep(name="s", base=_base(),
                      axes={"provider,model": (("aws", "vgg"),
                                               ("gcp", "albert")),
                            "workload": ("w-40",)})
        cells = sweep.cells()
        assert len(cells) == 2
        assert (cells[0].spec.provider, cells[0].spec.model) == ("aws", "vgg")
        assert (cells[1].spec.provider, cells[1].spec.model) == ("gcp",
                                                                 "albert")
        assert sweep.axis_names == ("provider", "model", "workload")

    def test_zipped_axis_arity_checked(self):
        with pytest.raises(ValueError, match="2-tuples"):
            Sweep(name="s", base=_base(),
                  axes={"provider,model": ("aws",)})

    def test_constants_label_every_cell(self):
        sweep = Sweep(name="s", base=_base(), axes={"batch_size": (1, 2)},
                      constants={"panel": "12c"})
        assert all(c.labels["panel"] == "12c" for c in sweep.cells())
        assert sweep.axis_names[0] == "panel"

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep axis"):
            Sweep(name="s", base=_base(), axes={"frobnicate": (1,)})

    def test_duplicate_axis_rejected(self):
        with pytest.raises(ValueError, match="more than once"):
            Sweep(name="s", base=_base(),
                  axes={"provider": ("aws",),
                        "provider,model": (("gcp", "vgg"),)})

    def test_override_collision_with_base_rejected(self):
        with pytest.raises(ValueError, match="collides"):
            Sweep(name="s", base=_base(config={"memory_gb": 8.0}),
                  axes={"memory_gb": (2.0, 4.0)})

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            Sweep(name="s", base=_base(), axes={"memory_gb": ()})

    def test_cell_keys_unique_across_grid(self):
        sweep = Sweep(name="s", base=_base(),
                      axes={"provider": ("aws", "gcp"),
                            "runtime": ("tf1.15", "ort1.4"),
                            "memory_gb": (2.0, 4.0, 8.0)})
        keys = [c.spec.cell_key for c in sweep.cells()]
        assert len(keys) == len(set(keys)) == 12

    def test_duplicate_cell_key_rejected(self):
        # Two identical values on one axis expand to the same cell.
        with pytest.raises(ValueError, match="duplicate cell"):
            Sweep(name="s", base=_base(),
                  axes={"memory_gb": (2.0, 2.0)}).cells()

    def test_cell_spec_names_are_unique_and_identifiable(self):
        sweep = Sweep(name="nav", base=_base(),
                      axes={"runtime": ("tf1.15", "ort1.4"),
                            "memory_gb": (2.0, 4.0)})
        names = [c.spec.name for c in sweep.cells()]
        assert names[0] == "nav/tf1.15/2.0"
        assert len(set(names)) == 4  # rows / CSV exports stay identifiable
        # ...without splitting the run cache (cell_key ignores the name).
        assert "nav" not in sweep.cells()[0].spec.cell_key

    def test_from_specs_wraps_the_scenario_library(self):
        sweep = Sweep.from_specs("lib", [get_scenario("burst-storm"),
                                         get_scenario("eager-managed")])
        cells = sweep.cells()
        assert len(sweep) == len(cells) == 2
        assert cells[0].labels == {"scenario": "burst-storm"}
        assert cells[1].spec.workload == "w-120"
        # The explicit list is a declared field, not a hidden attribute.
        assert sweep.explicit_cells == tuple(cells)
        with pytest.raises(ValueError, match="not both"):
            Sweep(name="bad", base=_base(), axes={"memory_gb": (2.0,)},
                  explicit_cells=sweep.explicit_cells)

    def test_base_config_carries_into_every_cell(self):
        sweep = Sweep(name="s", base=_base(config={"batch_size": 4}),
                      axes={"memory_gb": (2.0, 4.0)})
        for cell in sweep.cells():
            assert cell.spec.overrides["batch_size"] == 4


# ---------------------------------------------------------------------------
# ResultFrame algebra (synthetic rows, no simulation)
# ---------------------------------------------------------------------------

class TestResultFrameAlgebra:
    @pytest.fixture
    def frame(self):
        return ResultFrame.from_rows([
            {"model": "mobilenet", "runtime": "tf1.15", "cost": 1.0},
            {"model": "mobilenet", "runtime": "ort1.4", "cost": 0.5},
            {"model": "vgg", "runtime": "tf1.15", "cost": 4.0},
            {"model": "vgg", "runtime": "ort1.4", "cost": 3.0},
        ], name="demo")

    def test_shape_and_columns(self, frame):
        assert len(frame) == 4
        assert frame.columns == ["model", "runtime", "cost"]
        assert list(frame["cost"]) == [1.0, 0.5, 4.0, 3.0]

    def test_select(self, frame):
        sub = frame.select("model", "cost")
        assert sub.columns == ["model", "cost"]
        with pytest.raises(KeyError):
            frame.select("nope")

    def test_where_equals_and_predicate(self, frame):
        assert len(frame.where(model="vgg")) == 2
        cheap = frame.where(lambda row: row["cost"] < 1.0)
        assert len(cheap) == 1 and cheap.row(0)["runtime"] == "ort1.4"
        assert len(frame.where(model="vgg", runtime="ort1.4")) == 1
        with pytest.raises(KeyError):
            frame.where(nope=1)

    def test_pivot_single_value(self, frame):
        wide = frame.pivot(index="model", columns="runtime", values="cost",
                           fmt="{}_usd")
        assert wide.columns == ["model", "tf1.15_usd", "ort1.4_usd"]
        assert wide.to_rows() == [
            {"model": "mobilenet", "tf1.15_usd": 1.0, "ort1.4_usd": 0.5},
            {"model": "vgg", "tf1.15_usd": 4.0, "ort1.4_usd": 3.0},
        ]

    def test_pivot_missing_cells_are_none(self):
        frame = ResultFrame.from_rows([
            {"model": "vgg", "runtime": "tf1.15", "cost": 4.0},
        ])
        wide = frame.pivot(index="model", columns="runtime", values="cost")
        assert wide.to_rows() == [{"model": "vgg", "tf1.15": 4.0}]

    def test_to_rows_rounding_and_column_order(self, frame):
        rows = frame.to_rows(columns=("cost", "model"), round_floats=0)
        assert rows[0] == {"cost": 1.0, "model": "mobilenet"}
        assert list(rows[0]) == ["cost", "model"]

    def test_to_csv_roundtrip(self, frame, tmp_path):
        path = tmp_path / "frame.csv"
        text = frame.to_csv(str(path))
        assert path.read_text() == text
        lines = text.strip().splitlines()
        assert lines[0] == "model,runtime,cost"
        assert len(lines) == 5

    def test_with_column_appends_and_validates(self, frame):
        tagged = frame.with_column("cheap", [c < 2.0 for c in frame["cost"]])
        assert list(tagged["cheap"]) == [True, True, False, False]
        assert "cheap" not in frame.columns  # original untouched
        with pytest.raises(ValueError):
            frame.with_column("bad", [1])

    def test_mismatched_column_lengths_rejected(self):
        with pytest.raises(ValueError):
            ResultFrame({"a": [1, 2], "b": [1]})

    def test_empty_frame_survives_the_relational_verbs(self):
        """A zero-cell study must render '(no rows)', not crash.

        Empty frames have no columns at all (the column union over zero
        rows), so select/where/pivot degrade gracefully instead of
        raising KeyError in the presentation shims.
        """
        empty = ResultFrame.from_rows([])
        assert len(empty) == 0 and empty.columns == []
        assert empty.select("provider", "cost_usd").to_rows() == []
        assert empty.to_rows(columns=("provider",), round_floats=4) == []
        assert len(empty.where(provider="aws")) == 0
        wide = empty.pivot(index=("provider", "model"), columns="workload",
                           values="cost_usd")
        assert wide.to_rows() == []
        assert empty.to_text() == "(no rows)"

    def test_series_attach_and_carry(self, frame):
        frame.add_series("timeline", [{"t": 0.0, "v": 1.0}])
        assert frame.select("model").series["timeline"][0]["v"] == 1.0

    def test_to_text_renders(self, frame):
        text = frame.to_text()
        assert "mobilenet" in text and "cost" in text


# ---------------------------------------------------------------------------
# Reduction equivalence on the 14-cell golden matrix
# ---------------------------------------------------------------------------

def _golden_spec(key: str) -> ScenarioSpec:
    parts = key.split("/")
    provider, model, runtime, platform, workload_key = parts[:5]
    overrides = {}
    if len(parts) > 5:
        for pair in parts[5].split(","):
            name, raw = pair.split("=")
            if raw in ("True", "False"):
                overrides[name] = raw == "True"
            elif "." in raw:
                overrides[name] = float(raw)
            else:
                overrides[name] = int(raw)
    return ScenarioSpec(name=key, provider=provider, model=model,
                        runtime=runtime, platform=platform,
                        workload=workload_key, config=overrides)


class TestGoldenMatrixFrame:
    """The acceptance gate: the frame path reproduces the golden matrix."""

    @pytest.fixture(scope="class")
    def matrix(self):
        """Run the 14 golden cells once; build the frame from the runs."""
        bench = ServingBenchmark(seed=GOLDEN["seed"])
        planner = Planner()
        workloads = {key: standard_workload(entry["name"],
                                            seed=GOLDEN["seed"],
                                            scale=entry["scale"])
                     for key, entry in GOLDEN["workloads"].items()}
        cells = []
        for key in sorted(GOLDEN["cells"]):
            spec = _golden_spec(key)
            result = bench.run(spec.deployment(planner),
                               workloads[spec.workload])
            cells.append((key, spec, result))
        frame = ResultFrame.from_results(
            [({"cell": key}, result) for key, _spec, result in cells],
            name="golden", specs=[spec for _key, spec, _result in cells])
        return cells, frame

    def test_frame_has_one_row_per_cell(self, matrix):
        cells, frame = matrix
        assert len(frame) == len(cells) == len(GOLDEN["cells"]) == 14

    def test_outcome_columns_bit_identical_to_golden(self, matrix):
        cells, _frame = matrix
        for key, _spec, result in cells:
            expected = GOLDEN["cells"][key]
            assert result.table.column_hash() == expected["column_hash"], key
            assert result.cost == expected["cost"], key

    def test_frame_reductions_equal_runresult_metrics(self, matrix):
        cells, frame = matrix
        for index, (key, _spec, result) in enumerate(cells):
            row = frame.row(index)
            assert row["cell"] == key
            assert row["requests"] == result.total_requests, key
            assert row["success_ratio"] == result.success_ratio, key
            assert row["avg_latency_s"] == result.average_latency, key
            assert row["cost_usd"] == result.cost, key
            assert row["cold_start_ratio"] == result.cold_start_ratio, key
            assert row["cold_starts"] == result.usage.cold_starts, key
            assert row["instances_created"] == \
                result.usage.instances_created, key
            assert row["peak_instances"] == result.usage.peak_instances, key
            stats = result.latency_stats()
            assert row["p50_latency_s"] == stats.p50, key
            assert row["p99_latency_s"] == stats.p99, key
            assert row["std_latency_s"] == stats.std, key
            assert row["duration_s"] == result.duration_s, key


# ---------------------------------------------------------------------------
# Study execution
# ---------------------------------------------------------------------------

class TestStudyExecution:
    @pytest.fixture(scope="class")
    def context(self):
        return ExperimentContext(seed=3, scale=0.04, providers=("aws",))

    def test_run_produces_one_row_per_cell(self, context):
        study = Study(name="exec-test", sweeps=Sweep(
            name="exec-test", base=_base(workload="w-40"),
            axes={"runtime": ("tf1.15", "ort1.4")}))
        frame = study.run(context)
        assert len(frame) == 2
        assert list(frame["runtime"]) == ["tf1.15", "ort1.4"]
        assert frame.specs is not None and len(frame.specs) == 2

    def test_cells_share_the_context_cache(self, context):
        study = Study(name="cache-test", sweeps=Sweep(
            name="cache-test", base=_base(workload="w-40"),
            axes={"runtime": ("tf1.15",)}))
        frame = study.run(context)
        direct = context.run_cell("aws", "mobilenet", "tf1.15", "serverless",
                                  "w-40")
        assert frame.row(0)["cost_usd"] == direct.cost
        # Re-running the study is pure cache lookups: same values out.
        assert study.run(context).row(0) == frame.row(0)

    def test_provider_filter_drops_foreign_cells(self, context):
        study = Study(name="filter-test", sweeps=Sweep(
            name="filter-test", base=_base(workload="w-40"),
            axes={"provider": ("aws", "gcp")}))
        frame = study.run(context)
        assert list(frame["provider"]) == ["aws"]

    def test_series_templates_attach_per_cell(self, context):
        study = Study(
            name="series-test",
            sweeps=Sweep(name="series-test", base=_base(workload="w-40"),
                         axes={"runtime": ("tf1.15",)}),
            series={"{provider}/{runtime}": instance_series(60.0)})
        frame = study.run(context)
        assert "aws/tf1.15" in frame.series
        assert frame.series["aws/tf1.15"][0]["instances"] >= 0

    def test_metric_mappings_expand_to_columns(self, context):
        study = Study(
            name="metric-test",
            sweeps=Sweep(name="metric-test", base=_base(workload="w-40"),
                         axes={"runtime": ("tf1.15",)}),
            metrics={"extra": lambda r: {"double_cost": 2 * r.cost}})
        frame = study.run(context)
        assert frame.row(0)["double_cost"] == \
            pytest.approx(2 * frame.row(0)["cost_usd"])

    def test_registry_roundtrip(self):
        study = Study(name="reg-test", sweeps=Sweep(
            name="reg-test", base=_base(), axes={"memory_gb": (2.0,)}))
        register_study(study)
        assert get_study("reg-test") is study
        assert "reg-test" in list_studies()
        with pytest.raises(ValueError):
            register_study(Study(name="reg-test", sweeps=study.sweeps))
        with pytest.raises(KeyError):
            get_study("no-such-study")

    def test_experiment_studies_registered_on_load(self):
        names = load_registered_studies()
        for expected in ("fig05", "fig12", "table1"):
            assert expected in names


# ---------------------------------------------------------------------------
# The repro.api facade
# ---------------------------------------------------------------------------

class TestApiFacade:
    def test_run_single_scenario(self):
        result = run(_base(workload="w-40"), seed=3, scale=0.04)
        assert result.total_requests > 0

    def test_run_registered_scenario_by_name(self):
        result = run("burst-storm", seed=3, scale=0.03)
        assert result.workload_name == "w-storm"

    def test_run_study_accepts_a_bare_sweep(self):
        frame = run_study(Sweep(name="api-test", base=_base(workload="w-40"),
                                axes={"runtime": ("tf1.15", "ort1.4")}),
                          seed=3, scale=0.04)
        assert len(frame) == 2
        assert frame.row(0)["cost_usd"] > frame.row(1)["cost_usd"]

    def test_run_study_by_registered_name(self):
        frame = run_study("fig14", seed=3, scale=0.03, providers=("aws",))
        assert list(frame["runtime"]) == ["tf1.15", "ort1.4"]
        assert "E2E (cs)" in frame.columns

    def test_run_study_infers_providers_from_cells(self):
        frame = run_study(Sweep(name="api-prov", base=_base(workload="w-40"),
                                axes={"provider": ("aws",)}),
                          seed=3, scale=0.04)
        assert len(frame) == 1


# ---------------------------------------------------------------------------
# CLI integration
# ---------------------------------------------------------------------------

class TestCliStudySurface:
    def test_list_shows_studies_scenarios_and_workloads(self, capsys):
        from repro.experiments.runner import main
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig05" in out
        assert "burst-storm" in out
        assert "w-storm" in out
        assert "diurnal-scalein" in out

    def test_scenarios_listing_has_descriptions(self, capsys):
        from repro.experiments.runner import main
        assert main(["--scenarios"]) == 0
        out = capsys.readouterr().out
        assert "provisioned-serverless" in out
        assert "cell: aws/mobilenet" in out
        assert "w-diurnal" in out

    def test_unknown_experiment_names_near_misses(self, capsys):
        from repro.experiments.runner import main
        with pytest.raises(SystemExit):
            main(["fig5"])
        err = capsys.readouterr().err
        assert "did you mean" in err and "fig05" in err

    def test_sweep_unknown_name_names_near_misses(self, capsys):
        from repro.experiments.runner import main
        with pytest.raises(SystemExit):
            main(["sweep", "burst-strm"])
        err = capsys.readouterr().err
        assert "burst-storm" in err

    def test_sweep_runs_a_registered_scenario(self, capsys, tmp_path):
        from repro.experiments.runner import main
        csv_path = tmp_path / "sweep.csv"
        code = main(["sweep", "provisioned-serverless", "--scale", "0.04",
                     "--csv", str(csv_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "sweep provisioned-serverless" in out
        header = csv_path.read_text().splitlines()[0]
        assert "cost_usd" in header

    def test_experiment_csv_export(self, capsys, tmp_path):
        from repro.experiments.runner import main
        csv_path = tmp_path / "fig04.csv"
        code = main(["fig04", "--scale", "0.04", "--providers", "aws",
                     "--csv", str(csv_path)])
        assert code == 0
        assert "workload" in csv_path.read_text().splitlines()[0]

    def test_csv_rejects_multiple_targets(self, capsys):
        from repro.experiments.runner import main
        with pytest.raises(SystemExit):
            main(["fig04", "fig05", "--csv", "/tmp/x.csv"])


# ---------------------------------------------------------------------------
# Replication: Sweep(replicates=K) / seeds / the seed axis
# ---------------------------------------------------------------------------

class TestSweepReplication:
    def test_replicates_expand_each_cell_k_times(self):
        sweep = Sweep(name="r", base=_base(),
                      axes={"runtime": ("tf1.15", "ort1.4")}, replicates=3)
        cells = sweep.cells(base_seed=11)
        assert len(sweep) == len(cells) == 6
        assert sweep.axis_names == ("runtime", "replicate", "seed")
        assert [c.labels["replicate"] for c in cells] == [0, 1, 2, 0, 1, 2]
        assert [c.labels["seed"] for c in cells] == [11, 12, 13, 11, 12, 13]
        assert [c.spec.seed for c in cells] == [11, 12, 13, 11, 12, 13]
        # Replicate cells stay distinct (and identifiable) by name + key.
        assert len({c.spec.cell_key for c in cells}) == 6
        assert cells[0].spec.name.endswith("/r0")

    def test_default_base_seed_is_the_project_seed(self):
        sweep = Sweep(name="r", base=_base(), replicates=2)
        assert [c.spec.seed for c in sweep.cells()] == [7, 8]

    def test_explicit_seeds_override_derivation(self):
        sweep = Sweep(name="r", base=_base(), seeds=(101, 205))
        assert sweep.replicates == 2
        assert [c.labels["seed"] for c in sweep.cells(base_seed=11)] \
            == [101, 205]

    def test_seed_axis_pins_spec_seeds(self):
        sweep = Sweep(name="r", base=_base(), axes={"seed": (3, 5, 8)})
        cells = sweep.cells()
        assert [c.spec.seed for c in cells] == [3, 5, 8]
        # The seed is a replication knob, never a ServiceConfig override.
        assert all(c.spec.overrides == {} for c in cells)
        assert sweep.axis_names == ("seed",)

    def test_seed_axis_conflicts_with_replicates(self):
        with pytest.raises(ValueError, match="replication style"):
            Sweep(name="r", base=_base(), axes={"seed": (1, 2)},
                  replicates=2)

    def test_invalid_replication_rejected(self):
        with pytest.raises(ValueError, match="positive integer"):
            Sweep(name="r", base=_base(), replicates=0)
        with pytest.raises(ValueError, match="distinct"):
            Sweep(name="r", base=_base(), seeds=(4, 4))
        with pytest.raises(ValueError, match="disagrees"):
            Sweep(name="r", base=_base(), replicates=3, seeds=(1, 2))

    def test_with_replicates_makes_an_independent_copy(self):
        sweep = Sweep(name="r", base=_base(),
                      axes={"runtime": ("tf1.15",)})
        replicated = sweep.with_replicates(4)
        assert len(sweep) == 1 and len(replicated) == 4
        assert replicated.axes == sweep.axes

    def test_explicit_cells_replicate_too(self):
        sweep = Sweep.from_specs(
            "lib", [get_scenario("burst-storm")]).with_replicates(2)
        cells = sweep.cells(base_seed=5)
        assert len(cells) == 2
        assert [c.labels["seed"] for c in cells] == [5, 6]
        assert cells[0].labels["scenario"] == "burst-storm"

    def test_study_with_replicates_and_run_meta(self):
        context = ExperimentContext(seed=3, scale=0.04, providers=("aws",))
        study = Study(name="rep-exec", sweeps=Sweep(
            name="rep-exec", base=_base(workload="w-40")))
        frame = study.with_replicates(2).run(context)
        assert len(frame) == 2
        assert frame.meta["replicates"] == {"rep-exec": 2}
        assert list(frame["seed"]) == [3, 4]
        # Replicate 0 runs at the context seed: same cell as unreplicated.
        plain = study.run(context)
        assert frame.where(replicate=0).row(0)["cost_usd"] == \
            plain.row(0)["cost_usd"]


# ---------------------------------------------------------------------------
# Constraint hook and deterministic subsampling
# ---------------------------------------------------------------------------

class TestSweepConstraint:
    def test_where_drops_and_reports(self):
        sweep = Sweep(
            name="c", base=_base(),
            axes={"memory_gb": (2.0, 4.0), "batch_size": (1, 4)},
            where=lambda labels: not (labels["memory_gb"] == 2.0
                                      and labels["batch_size"] == 4))
        expansion = sweep.expand()
        assert len(expansion.cells) == 3
        assert len(expansion.dropped) == 1
        assert expansion.dropped[0] == {"memory_gb": 2.0, "batch_size": 4}
        assert len(sweep) == 3

    def test_all_infeasible_raises_instead_of_empty_grid(self):
        sweep = Sweep(name="c", base=_base(),
                      axes={"memory_gb": (2.0, 4.0)},
                      where=lambda labels: False)
        with pytest.raises(ValueError, match="dropped all"):
            sweep.expand()

    def test_predicate_errors_carry_cell_context(self):
        sweep = Sweep(name="c", base=_base(),
                      axes={"memory_gb": (2.0,)},
                      where=lambda labels: labels["no_such_label"])
        with pytest.raises(ValueError, match="constraint on sweep 'c'"):
            sweep.expand()

    def test_non_callable_where_rejected(self):
        with pytest.raises(ValueError, match="callable"):
            Sweep(name="c", base=_base(), where=True)

    def test_constraint_applies_before_replication(self):
        sweep = Sweep(
            name="c", base=_base(), axes={"memory_gb": (2.0, 4.0)},
            where=lambda labels: labels["memory_gb"] > 2.0, replicates=2)
        expansion = sweep.expand()
        assert len(expansion.cells) == 2      # 1 feasible cell x 2 seeds
        assert len(expansion.dropped) == 1    # grid points, not runs

    def test_study_run_reports_constrained_out(self):
        context = ExperimentContext(seed=3, scale=0.04, providers=("aws",))
        study = Study(name="con-exec", sweeps=Sweep(
            name="con-exec", base=_base(workload="w-40"),
            axes={"memory_gb": (2.0, 4.0)},
            where=lambda labels: labels["memory_gb"] < 4.0))
        frame = study.run(context)
        assert len(frame) == 1
        assert frame.meta["constrained_out"] == {"con-exec": 1}


class TestSweepSampling:
    def _grid(self, **kwargs):
        return Sweep(name="s", base=_base(),
                     axes={"memory_gb": (2.0, 4.0, 8.0),
                           "batch_size": (1, 2, 4)}, **kwargs)

    def test_random_sample_is_deterministic(self):
        first = self._grid(sample=4, sample_seed=9).expand()
        second = self._grid(sample=4, sample_seed=9).expand()
        assert [c.spec.cell_key for c in first.cells] == \
            [c.spec.cell_key for c in second.cells]
        assert len(first.cells) == 4
        assert first.sampled_out == 5

    def test_different_sample_seed_changes_the_draw(self):
        draws = {tuple(c.spec.cell_key
                       for c in self._grid(sample=4,
                                           sample_seed=seed).expand().cells)
                 for seed in range(6)}
        assert len(draws) > 1

    def test_sample_larger_than_grid_is_a_noop(self):
        expansion = self._grid(sample=50).expand()
        assert len(expansion.cells) == 9
        assert expansion.sampled_out == 0

    def test_lhs_stratifies_every_axis(self):
        expansion = self._grid(sample=3, sample_method="lhs",
                               sample_seed=2).expand()
        assert len(expansion.cells) == 3
        # 3 samples over 3-value axes: LHS hits each axis value once.
        assert sorted(c.labels["memory_gb"] for c in expansion.cells) == \
            [2.0, 4.0, 8.0]
        assert sorted(c.labels["batch_size"] for c in expansion.cells) == \
            [1, 2, 4]

    def test_lhs_tops_up_after_constraint_holes(self):
        sweep = self._grid(sample=5, sample_method="lhs", sample_seed=2,
                           where=lambda labels: labels["batch_size"] < 4)
        expansion = sweep.expand()
        assert len(expansion.cells) == 5
        assert all(c.labels["batch_size"] < 4 for c in expansion.cells)

    def test_lhs_requires_axes(self):
        explicit = Sweep.from_specs("lib", [get_scenario("burst-storm")])
        with pytest.raises(ValueError, match="lhs"):
            Sweep(name="s", base=_base(),
                  explicit_cells=explicit.explicit_cells,
                  sample=1, sample_method="lhs")

    def test_invalid_sampling_rejected(self):
        with pytest.raises(ValueError, match="sample must be"):
            self._grid(sample=0)
        with pytest.raises(ValueError, match="sample_method"):
            self._grid(sample=2, sample_method="halton")


# ---------------------------------------------------------------------------
# Grouped reductions: group_by / replicate_summary / concat
# ---------------------------------------------------------------------------

class TestGroupedReductions:
    @pytest.fixture()
    def replicated_frame(self):
        rows = []
        for platform, values in (("serverless", (1.0, 2.0, 3.0)),
                                 ("cpu_server", (5.0, 5.0, 5.0))):
            for replicate, value in enumerate(values):
                rows.append({"platform": platform, "replicate": replicate,
                             "seed": 7 + replicate, "latency": value,
                             "note": f"{platform}-{replicate}"})
        return ResultFrame.from_rows(
            rows, name="g", meta={"labels": ["platform", "replicate",
                                             "seed"]})

    def test_group_by_stats_are_exact(self, replicated_frame):
        grouped = replicated_frame.group_by("platform")
        assert list(grouped["platform"]) == ["serverless", "cpu_server"]
        assert list(grouped["replicates"]) == [3, 3]
        assert grouped.row(0)["latency_mean"] == pytest.approx(2.0)
        assert grouped.row(0)["latency_std"] == pytest.approx(1.0)
        assert grouped.row(0)["latency_ci95"] == \
            pytest.approx(1.96 / 3 ** 0.5)
        assert grouped.row(1)["latency_std"] == 0.0
        assert grouped.row(1)["latency_ci95"] == 0.0

    def test_group_by_drops_varying_extras_keeps_constant_ones(self):
        frame = ResultFrame.from_rows([
            {"cell": "a", "runtime": "tf1.15", "x": 1.0, "label": "one"},
            {"cell": "a", "runtime": "tf1.15", "x": 3.0, "label": "two"},
        ])
        grouped = frame.group_by("cell")
        assert "runtime" in grouped.columns      # constant within group
        assert "label" not in grouped.columns    # varies within group
        assert grouped.row(0)["x_mean"] == 2.0

    def test_group_by_singleton_groups_have_zero_spread(self):
        frame = ResultFrame.from_rows([{"cell": "a", "x": 4.5}])
        grouped = frame.group_by("cell")
        assert grouped.row(0) == {"cell": "a", "replicates": 1,
                                  "x_mean": 4.5, "x_std": 0.0,
                                  "x_ci95": 0.0}

    def test_group_by_validates_columns(self, replicated_frame):
        with pytest.raises(KeyError):
            replicated_frame.group_by("no_such")
        with pytest.raises(KeyError):
            replicated_frame.group_by("platform", metrics=("no_such",))
        with pytest.raises(ValueError):
            replicated_frame.group_by()

    def test_replicate_summary_uses_label_metadata(self, replicated_frame):
        summary = replicated_frame.replicate_summary()
        assert len(summary) == 2
        assert "latency_ci95" in summary.columns
        assert "replicate" not in summary.columns
        assert "seed" not in summary.columns

    def test_replicate_summary_is_identity_without_replicates(self):
        frame = ResultFrame.from_rows([{"cell": "a", "x": 1.0}])
        assert frame.replicate_summary() is frame

    def test_concat_unions_columns_and_labels(self):
        left = ResultFrame.from_rows([{"a": 1, "x": 1.0}], name="l",
                                     meta={"labels": ["a"]})
        right = ResultFrame.from_rows([{"a": 2, "y": 3.0}], name="r",
                                      meta={"labels": ["a"]})
        both = ResultFrame.concat([left, right])
        assert both.columns == ["a", "x", "y"]
        assert len(both) == 2
        assert both.row(0)["y"] is None and both.row(1)["x"] is None
        assert both.meta["labels"] == ["a"]
        assert both.name == "l+r"

    def test_concat_of_replicated_frames_still_summarises(self):
        rows = [{"cell": "a", "replicate": r, "seed": 7 + r, "x": float(r)}
                for r in range(2)]
        meta = {"labels": ["cell", "replicate", "seed"]}
        one = ResultFrame.from_rows(rows, meta=meta)
        rows_b = [dict(row, cell="b") for row in rows]
        two = ResultFrame.from_rows(rows_b, meta=meta)
        summary = ResultFrame.concat([one, two]).replicate_summary()
        assert list(summary["cell"]) == ["a", "b"]
        assert list(summary["replicates"]) == [2, 2]

    def test_concat_empty_input(self):
        assert len(ResultFrame.concat([])) == 0


# ---------------------------------------------------------------------------
# Stable CSV column order under differing derived-metric mappings
# ---------------------------------------------------------------------------

class TestStableColumnOrder:
    class _FakeResult:
        """Bare-minimum RunResult stand-in for from_results."""

        def __init__(self, source):
            self.table = source.table
            self.usage = source.usage
            self.duration_s = source.duration_s

    @pytest.fixture(scope="class")
    def result(self):
        return run(_base(workload="w-40"), seed=3, scale=0.04)

    def test_agreeing_mappings_keep_declaration_order(self, result):
        frame = ResultFrame.from_results(
            [({"cell": "a"}, result), ({"cell": "b"}, result)],
            metrics={"m": lambda r: {"zeta": 1.0, "alpha": 2.0}})
        assert frame.columns[-2:] == ["zeta", "alpha"]

    def test_differing_mappings_emit_sorted_union(self, result):
        def per_cell(values):
            iterator = iter(values)
            return lambda r: next(iterator)

        metric = per_cell([{"zeta": 1.0, "mid": 2.0},
                           {"alpha": 3.0, "mid": 4.0}])
        frame = ResultFrame.from_results(
            [({"cell": "a"}, result), ({"cell": "b"}, result)],
            metrics={"m": metric})
        assert frame.columns[-3:] == ["alpha", "mid", "zeta"]
        # Order no longer depends on which cell came first.
        metric = per_cell([{"alpha": 3.0, "mid": 4.0},
                           {"zeta": 1.0, "mid": 2.0}])
        flipped = ResultFrame.from_results(
            [({"cell": "b"}, result), ({"cell": "a"}, result)],
            metrics={"m": metric})
        assert flipped.columns == frame.columns
        header = frame.to_csv().splitlines()[0]
        assert header == ",".join(frame.columns)
        assert frame.row(0)["alpha"] is None

    def test_labels_recorded_in_meta(self, result):
        frame = ResultFrame.from_results([({"cell": "a"}, result)])
        assert frame.meta["labels"] == ["cell"]


# ---------------------------------------------------------------------------
# CLI replication surface
# ---------------------------------------------------------------------------

class TestCliReplication:
    def test_sweep_replicates_collapse_and_csv_stats(self, capsys, tmp_path):
        from repro.experiments.runner import main
        csv_path = tmp_path / "rep.csv"
        code = main(["sweep", "provisioned-serverless", "--scale", "0.04",
                     "--replicates", "2", "--csv", str(csv_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 runs collapsed to 1 cells" in out
        header = csv_path.read_text().splitlines()[0].split(",")
        for column in ("replicates", "cost_usd_mean", "cost_usd_std",
                       "cost_usd_ci95"):
            assert column in header

    def test_sweep_rejects_bad_replicates(self, capsys):
        from repro.experiments.runner import main
        with pytest.raises(SystemExit):
            main(["sweep", "burst-storm", "--replicates", "0"])

    def test_fig05_replicated_study_is_registered(self):
        load_registered_studies()
        study = get_study("fig05-replicated")
        assert all(sweep.replicates == 5 for sweep in study.sweeps)
        assert len(study) == 5 * len(get_study("fig05"))


# ---------------------------------------------------------------------------
# Post-review hardening
# ---------------------------------------------------------------------------

class TestReviewHardening:
    def test_allow_empty_permits_all_dropped_grids(self):
        sweep = Sweep(name="e", base=_base(),
                      axes={"memory_gb": (2.0, 4.0)},
                      where=lambda labels: False, allow_empty=True)
        expansion = sweep.expand()
        assert expansion.cells == ()
        assert len(expansion.dropped) == 2

    def test_navigator_prefilter_may_empty_grid_when_servers_remain(self):
        from repro.tools.navigator import (
            DesignSpaceNavigator,
            NavigationConstraints,
        )
        nav = DesignSpaceNavigator(
            provider="aws", model="mobilenet",
            runtimes=("tf1.15",), memory_sizes_gb=(2.0,), batch_sizes=(1,),
            include_servers=True, prefilter=lambda labels: False)
        cells = nav.cells()
        assert [c.labels["platform"] for c in cells] == \
            ["cpu_server", "gpu_server"]
        workload = standard_workload("w-40", seed=3, scale=0.04)
        result = nav.search(workload,
                            NavigationConstraints(min_success_ratio=0.5))
        assert len(result.evaluated) == 2
        assert result.frame.meta["constrained_out"] == \
            {"nav/aws/mobilenet": 1}
        # Without servers the all-dropped grid yields an empty frame
        # with the declared schema (feasible column included) instead
        # of raising — see TestNavigatorEmptyPrefilter in test_tools.py.
        solo = DesignSpaceNavigator(
            provider="aws", model="mobilenet",
            prefilter=lambda labels: False)
        assert solo.cells() == []

    def test_replicate_summary_without_label_metadata_raises(self):
        frame = ResultFrame.from_rows(
            [{"cell": "a", "replicate": 0, "x": 1.0},
             {"cell": "a", "replicate": 1, "x": 2.0}])
        with pytest.raises(ValueError, match="label metadata"):
            frame.replicate_summary()

    def test_fig05_replicated_inherits_the_base_study_shape(self):
        load_registered_studies()
        base = get_study("fig05")
        replicated = get_study("fig05-replicated")
        assert replicated.metrics == base.metrics
        assert replicated.series == base.series
        assert [s.axes for s in replicated.sweeps] == \
            [s.axes for s in base.sweeps]
