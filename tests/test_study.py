"""Tests for the study layer: Sweep grids, ResultFrame, Study execution.

Four layers of guarantees:

* **Grid expansion** — axis ordering, zipped axes, override collisions,
  ``cell_key`` uniqueness: the flat unit-of-work list is exactly the
  declared product, in the declared order.
* **Frame algebra** — select / where / pivot / to_rows / to_csv over
  synthetic rows, independent of any simulation.
* **Reduction equivalence** — on the 14-cell golden matrix (the same
  cells ``tests/data/golden_hashes.json`` gates), every ResultFrame
  column equals the corresponding per-cell :class:`RunResult` metric,
  and the outcome-column hashes stay bit-identical through the frame
  path.
* **Execution** — Study.run uses the shared context cache, filters by
  provider, attaches named series, and the ``repro.api`` facade and CLI
  expose it all.
"""

import json
import os

import pytest

from repro.api import run, run_study
from repro.core.benchmark import ServingBenchmark
from repro.core.planner import Planner
from repro.core.scenario import ScenarioSpec, get_scenario
from repro.core.study import (
    ResultFrame,
    Study,
    Sweep,
    get_study,
    list_studies,
    register_study,
)
from repro.experiments.base import (
    ExperimentContext,
    instance_series,
    load_registered_studies,
)
from repro.workload.generator import standard_workload

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "data",
                           "golden_hashes.json")

with open(GOLDEN_PATH, "r", encoding="utf-8") as _handle:
    GOLDEN = json.load(_handle)


def _base(**overrides) -> ScenarioSpec:
    defaults = dict(name="t", provider="aws", model="mobilenet")
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


# ---------------------------------------------------------------------------
# Sweep grid expansion
# ---------------------------------------------------------------------------

class TestSweepExpansion:
    def test_axis_ordering_first_axis_outermost(self):
        sweep = Sweep(name="s", base=_base(),
                      axes={"runtime": ("tf1.15", "ort1.4"),
                            "memory_gb": (2.0, 4.0)})
        labels = [(c.labels["runtime"], c.labels["memory_gb"])
                  for c in sweep.cells()]
        assert labels == [("tf1.15", 2.0), ("tf1.15", 4.0),
                          ("ort1.4", 2.0), ("ort1.4", 4.0)]
        assert len(sweep) == 4
        assert sweep.axis_names == ("runtime", "memory_gb")

    def test_spec_axes_set_fields_config_axes_set_overrides(self):
        sweep = Sweep(name="s", base=_base(),
                      axes={"provider": ("aws", "gcp"),
                            "batch_size": (1, 2)})
        cells = sweep.cells()
        assert cells[0].spec.provider == "aws"
        assert cells[0].spec.overrides == {"batch_size": 1}
        assert cells[-1].spec.provider == "gcp"
        assert cells[-1].spec.overrides == {"batch_size": 2}

    def test_zipped_axis_moves_dimensions_together(self):
        sweep = Sweep(name="s", base=_base(),
                      axes={"provider,model": (("aws", "vgg"),
                                               ("gcp", "albert")),
                            "workload": ("w-40",)})
        cells = sweep.cells()
        assert len(cells) == 2
        assert (cells[0].spec.provider, cells[0].spec.model) == ("aws", "vgg")
        assert (cells[1].spec.provider, cells[1].spec.model) == ("gcp",
                                                                 "albert")
        assert sweep.axis_names == ("provider", "model", "workload")

    def test_zipped_axis_arity_checked(self):
        with pytest.raises(ValueError, match="2-tuples"):
            Sweep(name="s", base=_base(),
                  axes={"provider,model": ("aws",)})

    def test_constants_label_every_cell(self):
        sweep = Sweep(name="s", base=_base(), axes={"batch_size": (1, 2)},
                      constants={"panel": "12c"})
        assert all(c.labels["panel"] == "12c" for c in sweep.cells())
        assert sweep.axis_names[0] == "panel"

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep axis"):
            Sweep(name="s", base=_base(), axes={"frobnicate": (1,)})

    def test_duplicate_axis_rejected(self):
        with pytest.raises(ValueError, match="more than once"):
            Sweep(name="s", base=_base(),
                  axes={"provider": ("aws",),
                        "provider,model": (("gcp", "vgg"),)})

    def test_override_collision_with_base_rejected(self):
        with pytest.raises(ValueError, match="collides"):
            Sweep(name="s", base=_base(config={"memory_gb": 8.0}),
                  axes={"memory_gb": (2.0, 4.0)})

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            Sweep(name="s", base=_base(), axes={"memory_gb": ()})

    def test_cell_keys_unique_across_grid(self):
        sweep = Sweep(name="s", base=_base(),
                      axes={"provider": ("aws", "gcp"),
                            "runtime": ("tf1.15", "ort1.4"),
                            "memory_gb": (2.0, 4.0, 8.0)})
        keys = [c.spec.cell_key for c in sweep.cells()]
        assert len(keys) == len(set(keys)) == 12

    def test_duplicate_cell_key_rejected(self):
        # Two identical values on one axis expand to the same cell.
        with pytest.raises(ValueError, match="duplicate cell"):
            Sweep(name="s", base=_base(),
                  axes={"memory_gb": (2.0, 2.0)}).cells()

    def test_cell_spec_names_are_unique_and_identifiable(self):
        sweep = Sweep(name="nav", base=_base(),
                      axes={"runtime": ("tf1.15", "ort1.4"),
                            "memory_gb": (2.0, 4.0)})
        names = [c.spec.name for c in sweep.cells()]
        assert names[0] == "nav/tf1.15/2.0"
        assert len(set(names)) == 4  # rows / CSV exports stay identifiable
        # ...without splitting the run cache (cell_key ignores the name).
        assert "nav" not in sweep.cells()[0].spec.cell_key

    def test_from_specs_wraps_the_scenario_library(self):
        sweep = Sweep.from_specs("lib", [get_scenario("burst-storm"),
                                         get_scenario("eager-managed")])
        cells = sweep.cells()
        assert len(sweep) == len(cells) == 2
        assert cells[0].labels == {"scenario": "burst-storm"}
        assert cells[1].spec.workload == "w-120"
        # The explicit list is a declared field, not a hidden attribute.
        assert sweep.explicit_cells == tuple(cells)
        with pytest.raises(ValueError, match="not both"):
            Sweep(name="bad", base=_base(), axes={"memory_gb": (2.0,)},
                  explicit_cells=sweep.explicit_cells)

    def test_base_config_carries_into_every_cell(self):
        sweep = Sweep(name="s", base=_base(config={"batch_size": 4}),
                      axes={"memory_gb": (2.0, 4.0)})
        for cell in sweep.cells():
            assert cell.spec.overrides["batch_size"] == 4


# ---------------------------------------------------------------------------
# ResultFrame algebra (synthetic rows, no simulation)
# ---------------------------------------------------------------------------

class TestResultFrameAlgebra:
    @pytest.fixture
    def frame(self):
        return ResultFrame.from_rows([
            {"model": "mobilenet", "runtime": "tf1.15", "cost": 1.0},
            {"model": "mobilenet", "runtime": "ort1.4", "cost": 0.5},
            {"model": "vgg", "runtime": "tf1.15", "cost": 4.0},
            {"model": "vgg", "runtime": "ort1.4", "cost": 3.0},
        ], name="demo")

    def test_shape_and_columns(self, frame):
        assert len(frame) == 4
        assert frame.columns == ["model", "runtime", "cost"]
        assert list(frame["cost"]) == [1.0, 0.5, 4.0, 3.0]

    def test_select(self, frame):
        sub = frame.select("model", "cost")
        assert sub.columns == ["model", "cost"]
        with pytest.raises(KeyError):
            frame.select("nope")

    def test_where_equals_and_predicate(self, frame):
        assert len(frame.where(model="vgg")) == 2
        cheap = frame.where(lambda row: row["cost"] < 1.0)
        assert len(cheap) == 1 and cheap.row(0)["runtime"] == "ort1.4"
        assert len(frame.where(model="vgg", runtime="ort1.4")) == 1
        with pytest.raises(KeyError):
            frame.where(nope=1)

    def test_pivot_single_value(self, frame):
        wide = frame.pivot(index="model", columns="runtime", values="cost",
                           fmt="{}_usd")
        assert wide.columns == ["model", "tf1.15_usd", "ort1.4_usd"]
        assert wide.to_rows() == [
            {"model": "mobilenet", "tf1.15_usd": 1.0, "ort1.4_usd": 0.5},
            {"model": "vgg", "tf1.15_usd": 4.0, "ort1.4_usd": 3.0},
        ]

    def test_pivot_missing_cells_are_none(self):
        frame = ResultFrame.from_rows([
            {"model": "vgg", "runtime": "tf1.15", "cost": 4.0},
        ])
        wide = frame.pivot(index="model", columns="runtime", values="cost")
        assert wide.to_rows() == [{"model": "vgg", "tf1.15": 4.0}]

    def test_to_rows_rounding_and_column_order(self, frame):
        rows = frame.to_rows(columns=("cost", "model"), round_floats=0)
        assert rows[0] == {"cost": 1.0, "model": "mobilenet"}
        assert list(rows[0]) == ["cost", "model"]

    def test_to_csv_roundtrip(self, frame, tmp_path):
        path = tmp_path / "frame.csv"
        text = frame.to_csv(str(path))
        assert path.read_text() == text
        lines = text.strip().splitlines()
        assert lines[0] == "model,runtime,cost"
        assert len(lines) == 5

    def test_with_column_appends_and_validates(self, frame):
        tagged = frame.with_column("cheap", [c < 2.0 for c in frame["cost"]])
        assert list(tagged["cheap"]) == [True, True, False, False]
        assert "cheap" not in frame.columns  # original untouched
        with pytest.raises(ValueError):
            frame.with_column("bad", [1])

    def test_mismatched_column_lengths_rejected(self):
        with pytest.raises(ValueError):
            ResultFrame({"a": [1, 2], "b": [1]})

    def test_empty_frame_survives_the_relational_verbs(self):
        """A zero-cell study must render '(no rows)', not crash.

        Empty frames have no columns at all (the column union over zero
        rows), so select/where/pivot degrade gracefully instead of
        raising KeyError in the presentation shims.
        """
        empty = ResultFrame.from_rows([])
        assert len(empty) == 0 and empty.columns == []
        assert empty.select("provider", "cost_usd").to_rows() == []
        assert empty.to_rows(columns=("provider",), round_floats=4) == []
        assert len(empty.where(provider="aws")) == 0
        wide = empty.pivot(index=("provider", "model"), columns="workload",
                           values="cost_usd")
        assert wide.to_rows() == []
        assert empty.to_text() == "(no rows)"

    def test_series_attach_and_carry(self, frame):
        frame.add_series("timeline", [{"t": 0.0, "v": 1.0}])
        assert frame.select("model").series["timeline"][0]["v"] == 1.0

    def test_to_text_renders(self, frame):
        text = frame.to_text()
        assert "mobilenet" in text and "cost" in text


# ---------------------------------------------------------------------------
# Reduction equivalence on the 14-cell golden matrix
# ---------------------------------------------------------------------------

def _golden_spec(key: str) -> ScenarioSpec:
    parts = key.split("/")
    provider, model, runtime, platform, workload_key = parts[:5]
    overrides = {}
    if len(parts) > 5:
        for pair in parts[5].split(","):
            name, raw = pair.split("=")
            if raw in ("True", "False"):
                overrides[name] = raw == "True"
            elif "." in raw:
                overrides[name] = float(raw)
            else:
                overrides[name] = int(raw)
    return ScenarioSpec(name=key, provider=provider, model=model,
                        runtime=runtime, platform=platform,
                        workload=workload_key, config=overrides)


class TestGoldenMatrixFrame:
    """The acceptance gate: the frame path reproduces the golden matrix."""

    @pytest.fixture(scope="class")
    def matrix(self):
        """Run the 14 golden cells once; build the frame from the runs."""
        bench = ServingBenchmark(seed=GOLDEN["seed"])
        planner = Planner()
        workloads = {key: standard_workload(entry["name"],
                                            seed=GOLDEN["seed"],
                                            scale=entry["scale"])
                     for key, entry in GOLDEN["workloads"].items()}
        cells = []
        for key in sorted(GOLDEN["cells"]):
            spec = _golden_spec(key)
            result = bench.run(spec.deployment(planner),
                               workloads[spec.workload])
            cells.append((key, spec, result))
        frame = ResultFrame.from_results(
            [({"cell": key}, result) for key, _spec, result in cells],
            name="golden", specs=[spec for _key, spec, _result in cells])
        return cells, frame

    def test_frame_has_one_row_per_cell(self, matrix):
        cells, frame = matrix
        assert len(frame) == len(cells) == len(GOLDEN["cells"]) == 14

    def test_outcome_columns_bit_identical_to_golden(self, matrix):
        cells, _frame = matrix
        for key, _spec, result in cells:
            expected = GOLDEN["cells"][key]
            assert result.table.column_hash() == expected["column_hash"], key
            assert result.cost == expected["cost"], key

    def test_frame_reductions_equal_runresult_metrics(self, matrix):
        cells, frame = matrix
        for index, (key, _spec, result) in enumerate(cells):
            row = frame.row(index)
            assert row["cell"] == key
            assert row["requests"] == result.total_requests, key
            assert row["success_ratio"] == result.success_ratio, key
            assert row["avg_latency_s"] == result.average_latency, key
            assert row["cost_usd"] == result.cost, key
            assert row["cold_start_ratio"] == result.cold_start_ratio, key
            assert row["cold_starts"] == result.usage.cold_starts, key
            assert row["instances_created"] == \
                result.usage.instances_created, key
            assert row["peak_instances"] == result.usage.peak_instances, key
            stats = result.latency_stats()
            assert row["p50_latency_s"] == stats.p50, key
            assert row["p99_latency_s"] == stats.p99, key
            assert row["std_latency_s"] == stats.std, key
            assert row["duration_s"] == result.duration_s, key


# ---------------------------------------------------------------------------
# Study execution
# ---------------------------------------------------------------------------

class TestStudyExecution:
    @pytest.fixture(scope="class")
    def context(self):
        return ExperimentContext(seed=3, scale=0.04, providers=("aws",))

    def test_run_produces_one_row_per_cell(self, context):
        study = Study(name="exec-test", sweeps=Sweep(
            name="exec-test", base=_base(workload="w-40"),
            axes={"runtime": ("tf1.15", "ort1.4")}))
        frame = study.run(context)
        assert len(frame) == 2
        assert list(frame["runtime"]) == ["tf1.15", "ort1.4"]
        assert frame.specs is not None and len(frame.specs) == 2

    def test_cells_share_the_context_cache(self, context):
        study = Study(name="cache-test", sweeps=Sweep(
            name="cache-test", base=_base(workload="w-40"),
            axes={"runtime": ("tf1.15",)}))
        frame = study.run(context)
        direct = context.run_cell("aws", "mobilenet", "tf1.15", "serverless",
                                  "w-40")
        assert frame.row(0)["cost_usd"] == direct.cost
        # Re-running the study is pure cache lookups: same values out.
        assert study.run(context).row(0) == frame.row(0)

    def test_provider_filter_drops_foreign_cells(self, context):
        study = Study(name="filter-test", sweeps=Sweep(
            name="filter-test", base=_base(workload="w-40"),
            axes={"provider": ("aws", "gcp")}))
        frame = study.run(context)
        assert list(frame["provider"]) == ["aws"]

    def test_series_templates_attach_per_cell(self, context):
        study = Study(
            name="series-test",
            sweeps=Sweep(name="series-test", base=_base(workload="w-40"),
                         axes={"runtime": ("tf1.15",)}),
            series={"{provider}/{runtime}": instance_series(60.0)})
        frame = study.run(context)
        assert "aws/tf1.15" in frame.series
        assert frame.series["aws/tf1.15"][0]["instances"] >= 0

    def test_metric_mappings_expand_to_columns(self, context):
        study = Study(
            name="metric-test",
            sweeps=Sweep(name="metric-test", base=_base(workload="w-40"),
                         axes={"runtime": ("tf1.15",)}),
            metrics={"extra": lambda r: {"double_cost": 2 * r.cost}})
        frame = study.run(context)
        assert frame.row(0)["double_cost"] == \
            pytest.approx(2 * frame.row(0)["cost_usd"])

    def test_registry_roundtrip(self):
        study = Study(name="reg-test", sweeps=Sweep(
            name="reg-test", base=_base(), axes={"memory_gb": (2.0,)}))
        register_study(study)
        assert get_study("reg-test") is study
        assert "reg-test" in list_studies()
        with pytest.raises(ValueError):
            register_study(Study(name="reg-test", sweeps=study.sweeps))
        with pytest.raises(KeyError):
            get_study("no-such-study")

    def test_experiment_studies_registered_on_load(self):
        names = load_registered_studies()
        for expected in ("fig05", "fig12", "table1"):
            assert expected in names


# ---------------------------------------------------------------------------
# The repro.api facade
# ---------------------------------------------------------------------------

class TestApiFacade:
    def test_run_single_scenario(self):
        result = run(_base(workload="w-40"), seed=3, scale=0.04)
        assert result.total_requests > 0

    def test_run_registered_scenario_by_name(self):
        result = run("burst-storm", seed=3, scale=0.03)
        assert result.workload_name == "w-storm"

    def test_run_study_accepts_a_bare_sweep(self):
        frame = run_study(Sweep(name="api-test", base=_base(workload="w-40"),
                                axes={"runtime": ("tf1.15", "ort1.4")}),
                          seed=3, scale=0.04)
        assert len(frame) == 2
        assert frame.row(0)["cost_usd"] > frame.row(1)["cost_usd"]

    def test_run_study_by_registered_name(self):
        frame = run_study("fig14", seed=3, scale=0.03, providers=("aws",))
        assert list(frame["runtime"]) == ["tf1.15", "ort1.4"]
        assert "E2E (cs)" in frame.columns

    def test_run_study_infers_providers_from_cells(self):
        frame = run_study(Sweep(name="api-prov", base=_base(workload="w-40"),
                                axes={"provider": ("aws",)}),
                          seed=3, scale=0.04)
        assert len(frame) == 1


# ---------------------------------------------------------------------------
# CLI integration
# ---------------------------------------------------------------------------

class TestCliStudySurface:
    def test_list_shows_studies_scenarios_and_workloads(self, capsys):
        from repro.experiments.runner import main
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig05" in out
        assert "burst-storm" in out
        assert "w-storm" in out
        assert "diurnal-scalein" in out

    def test_scenarios_listing_has_descriptions(self, capsys):
        from repro.experiments.runner import main
        assert main(["--scenarios"]) == 0
        out = capsys.readouterr().out
        assert "provisioned-serverless" in out
        assert "cell: aws/mobilenet" in out
        assert "w-diurnal" in out

    def test_unknown_experiment_names_near_misses(self, capsys):
        from repro.experiments.runner import main
        with pytest.raises(SystemExit):
            main(["fig5"])
        err = capsys.readouterr().err
        assert "did you mean" in err and "fig05" in err

    def test_sweep_unknown_name_names_near_misses(self, capsys):
        from repro.experiments.runner import main
        with pytest.raises(SystemExit):
            main(["sweep", "burst-strm"])
        err = capsys.readouterr().err
        assert "burst-storm" in err

    def test_sweep_runs_a_registered_scenario(self, capsys, tmp_path):
        from repro.experiments.runner import main
        csv_path = tmp_path / "sweep.csv"
        code = main(["sweep", "provisioned-serverless", "--scale", "0.04",
                     "--csv", str(csv_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "sweep provisioned-serverless" in out
        header = csv_path.read_text().splitlines()[0]
        assert "cost_usd" in header

    def test_experiment_csv_export(self, capsys, tmp_path):
        from repro.experiments.runner import main
        csv_path = tmp_path / "fig04.csv"
        code = main(["fig04", "--scale", "0.04", "--providers", "aws",
                     "--csv", str(csv_path)])
        assert code == 0
        assert "workload" in csv_path.read_text().splitlines()[0]

    def test_csv_rejects_multiple_targets(self, capsys):
        from repro.experiments.runner import main
        with pytest.raises(SystemExit):
            main(["fig04", "fig05", "--csv", "/tmp/x.csv"])
