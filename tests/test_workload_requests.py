"""Tests for the request pool."""

import pytest

from repro.sim import RandomStreams
from repro.workload.requests import RequestPool, RequestTemplate


class TestRequestTemplate:
    def test_validation(self):
        with pytest.raises(ValueError):
            RequestTemplate(index=0, payload_mb=-1.0)
        with pytest.raises(ValueError):
            RequestTemplate(index=0, payload_mb=0.1, samples=0)


class TestRequestPool:
    def test_pool_size(self):
        pool = RequestPool(sample_payload_mb=0.15, pool_size=200)
        assert len(pool) == 200

    def test_payloads_jittered_around_sample_size(self):
        pool = RequestPool(sample_payload_mb=0.15, pool_size=200, seed=1)
        mean = pool.mean_payload_mb()
        assert mean == pytest.approx(0.15, rel=0.1)
        sizes = {t.payload_mb for t in pool.templates}
        assert len(sizes) > 100

    def test_samples_multiply_payload(self):
        single = RequestPool(sample_payload_mb=0.1, pool_size=50,
                             payload_jitter=0.0, seed=1)
        batched = RequestPool(sample_payload_mb=0.1, pool_size=50,
                              samples_per_request=4, payload_jitter=0.0, seed=1)
        assert batched.mean_payload_mb() == pytest.approx(
            4 * single.mean_payload_mb())

    def test_pick_is_uniform_ish(self):
        pool = RequestPool(sample_payload_mb=0.1, pool_size=10, seed=2)
        rng = RandomStreams(3)
        picks = [pool.pick(rng).index for _ in range(500)]
        assert set(picks) == set(range(10))

    def test_validation(self):
        with pytest.raises(ValueError):
            RequestPool(sample_payload_mb=0.1, pool_size=0)
        with pytest.raises(ValueError):
            RequestPool(sample_payload_mb=-0.1)
        with pytest.raises(ValueError):
            RequestPool(sample_payload_mb=0.1, payload_jitter=1.5)
