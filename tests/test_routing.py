"""Tests for the multi-region routing front door (platforms/routing).

Five layers:

* **Config**: the routing knobs validate on `ServiceConfig` and stay
  hashable sweep axes.
* **Units**: `BackendHealth`, `CircuitBreaker`, `LatencyQuantile`, and
  the pure routing policies in isolation.
* **Ledger**: `RouterMeter` classification and the extended
  conservation identity, property-tested across fault schedules x
  routing policies.
* **Composition**: regional replicas strip routing knobs and correlated
  fault schedules strike region 0 only; the brownout backend serves the
  cheap model fault-free.
* **End to end**: failover strictly improves availability and recovery
  under the chaos-outage schedule, hedging fires, brownout degrades,
  runs stay bit-identical serial vs workers=N, and `region_count=1`
  never constructs a router.
"""

import math

import pytest

from repro.core.benchmark import ServingBenchmark
from repro.core.executor import Executor
from repro.core.planner import Planner
from repro.platforms.base import build_platform
from repro.platforms.routing import (
    BREAKER_STREAM,
    CIRCUIT_OPEN_ERROR,
    DEGRADED_LABEL,
    BackendHealth,
    BackendSnapshot,
    CircuitBreaker,
    LatencyQuantile,
    MultiRegionPlatform,
    RouterMeter,
    choose_priority,
    choose_weighted,
)
from repro.serving.deployment import ServiceConfig
from repro.serving.records import RequestOutcome
from repro.sim import Environment, RandomStreams
from repro.workload.requests import RequestPool

SEED = 5


def run_platform(deployment, workload, seed=SEED):
    """Run a cell and return (platform, table) for router introspection."""
    env = Environment()
    rng = RandomStreams(seed)
    platform = build_platform(env, deployment, rng=rng)
    pool = RequestPool(sample_payload_mb=deployment.model.input_payload_mb,
                      pool_size=workload.spec.request_pool_size, seed=seed)
    executor = Executor(env=env, platform=platform, workload=workload,
                        request_pool=pool, rng=rng)
    table = executor.run(until=workload.spec.duration_s + 400.0)
    table.fail_unfinished(workload.spec.duration_s + 400.0)
    return platform, table


def snapshot(index, admits=True, success=1.0, latency=0.05, region_latency=0.0):
    return BackendSnapshot(index=index, region_latency_s=region_latency,
                           admits=admits, success_rate=success,
                           latency_s=latency)


# ---------------------------------------------------------------------------
# Config layer
# ---------------------------------------------------------------------------

class TestRoutingConfig:
    def test_defaults_are_single_region_no_router_knobs(self):
        config = ServiceConfig()
        assert config.region_count == 1
        assert config.breaker_failure_threshold == 0
        assert config.hedge_percentile == 0.0
        assert config.brownout_watermark == 0.0

    def test_config_validates_routing_knobs(self):
        for bad in ({"region_count": 0},
                    {"region_latency_s": (-0.01,)},
                    {"routing_policy": "roulette"},
                    {"health_alpha": 0.0},
                    {"health_alpha": 1.5},
                    {"breaker_failure_threshold": -1},
                    {"breaker_cooldown_s": 0.0},
                    {"hedge_percentile": 100.0},
                    {"hedge_min_samples": 0},
                    {"brownout_watermark": 1.5}):
            with pytest.raises(ValueError):
                ServiceConfig(**bad)

    def test_region_latencies_are_hashable_tuples(self):
        config = ServiceConfig(region_count=2, region_latency_s=[0.0, 0.03])
        assert config.region_latency_s == (0.0, 0.03)
        hash(config)


# ---------------------------------------------------------------------------
# Unit layer
# ---------------------------------------------------------------------------

class TestBackendHealth:
    def test_starts_optimistic(self):
        health = BackendHealth(alpha=0.2)
        assert health.success_rate == 1.0
        assert health.samples == 0

    def test_ewma_folds_toward_observations(self):
        health = BackendHealth(alpha=0.5)
        health.observe(False, 1.0)
        assert health.success_rate == pytest.approx(0.5)
        health.observe(False, 1.0)
        assert health.success_rate == pytest.approx(0.25)
        health.observe(True, 0.1)
        assert health.success_rate == pytest.approx(0.625)

    def test_failures_never_move_the_latency_tracker(self):
        health = BackendHealth(alpha=0.5)
        health.observe(True, 0.2)
        assert health.latency_s == pytest.approx(0.2)
        health.observe(False, 30.0)  # a timeout says nothing about speed
        assert health.latency_s == pytest.approx(0.2)


class TestCircuitBreaker:
    def test_threshold_zero_disables(self):
        breaker = CircuitBreaker(threshold=0, cooldown_s=1.0)
        for _ in range(50):
            breaker.record_failure(now=0.0)
        assert breaker.admits(0.0)
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.trips == 0

    def test_trips_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3, cooldown_s=10.0)
        breaker.record_failure(0.0)
        breaker.record_failure(0.0)
        assert breaker.admits(0.0)
        breaker.record_failure(0.0)
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.admits(5.0)
        assert breaker.trips == 1

    def test_success_resets_the_consecutive_count(self):
        breaker = CircuitBreaker(threshold=3, cooldown_s=10.0)
        breaker.record_failure(0.0)
        breaker.record_failure(0.0)
        breaker.record_success()
        breaker.record_failure(0.0)
        breaker.record_failure(0.0)
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_admits_a_single_probe(self):
        breaker = CircuitBreaker(threshold=1, cooldown_s=10.0)
        breaker.record_failure(0.0)
        assert not breaker.admits(5.0)
        assert breaker.admits(10.0)  # cooldown elapsed
        breaker.on_route(10.0)       # the probe goes out
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert not breaker.admits(10.0)  # only one probe at a time

    def test_probe_success_recloses_probe_failure_retrips(self):
        breaker = CircuitBreaker(threshold=1, cooldown_s=10.0)
        breaker.record_failure(0.0)
        breaker.on_route(10.0)
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.admits(10.0)
        breaker.record_failure(11.0)
        breaker.on_route(21.0)
        breaker.record_failure(21.5)
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == 3

    def test_cooldown_jitter_draws_from_the_breaker_stream(self):
        rng, reference = RandomStreams(SEED), RandomStreams(SEED)
        breaker = CircuitBreaker(threshold=1, cooldown_s=10.0, rng=rng)
        breaker.record_failure(now=100.0)
        expected = 100.0 + 10.0 * reference.uniform(BREAKER_STREAM, 0.9, 1.1)
        assert breaker.open_until == pytest.approx(expected)
        assert 109.0 <= breaker.open_until <= 111.0


class TestLatencyQuantile:
    def test_not_ready_until_min_samples(self):
        quantile = LatencyQuantile(percentile=95.0, min_samples=4)
        for sample in (0.1, 0.2, 0.1):
            quantile.observe(sample)
        assert not quantile.ready
        quantile.observe(0.15)
        assert quantile.ready

    def test_estimate_tracks_the_upper_tail(self):
        p95 = LatencyQuantile(percentile=95.0, min_samples=1)
        p05 = LatencyQuantile(percentile=5.0, min_samples=1)
        for index in range(500):
            sample = 0.1 + 0.01 * (index % 10)
            p95.observe(sample)
            p05.observe(sample)
        assert p95.value > p05.value
        assert 0.1 <= p95.value <= 0.2

    def test_estimate_never_goes_negative(self):
        quantile = LatencyQuantile(percentile=5.0, min_samples=1)
        for _ in range(100):
            quantile.observe(0.0)
        assert quantile.value == 0.0


class TestRoutingPolicies:
    def test_priority_prefers_first_healthy_region(self):
        snaps = [snapshot(0), snapshot(1), snapshot(2)]
        assert choose_priority(snaps) == 0

    def test_priority_fails_over_past_unhealthy_and_open(self):
        snaps = [snapshot(0, admits=False),
                 snapshot(1, success=0.2),
                 snapshot(2, success=0.9)]
        assert choose_priority(snaps) == 2

    def test_priority_falls_back_to_unhealthy_admitting(self):
        snaps = [snapshot(0, admits=False), snapshot(1, success=0.1)]
        assert choose_priority(snaps) == 1

    def test_priority_none_when_every_breaker_is_open(self):
        snaps = [snapshot(0, admits=False), snapshot(1, admits=False)]
        assert choose_priority(snaps) is None

    def test_weighted_skips_open_breakers_and_covers_draw_range(self):
        snaps = [snapshot(0, admits=False), snapshot(1), snapshot(2)]
        chosen = {choose_weighted(snaps, draw / 100.0)
                  for draw in range(100)}
        assert 0 not in chosen
        assert chosen == {1, 2}

    def test_weighted_prefers_healthy_low_latency(self):
        snaps = [snapshot(0, success=0.9, latency=0.05),
                 snapshot(1, success=0.1, latency=0.05, region_latency=0.1)]
        picks = [choose_weighted(snaps, draw / 200.0) for draw in range(200)]
        assert picks.count(0) > picks.count(1)
        assert picks.count(1) > 0  # the floor weight keeps it discoverable

    def test_weighted_none_when_every_breaker_is_open(self):
        assert choose_weighted([snapshot(0, admits=False)], 0.5) is None


class TestRouterMeter:
    def _finished(self, success, error=""):
        outcome = RequestOutcome(request_id=0, client_id=0, send_time=0.0)
        outcome.finish(1.0, success, error)
        return outcome

    def test_every_outcome_lands_in_exactly_one_bucket(self):
        meter = RouterMeter()
        cases = [
            (self._finished(True), False, "completed"),
            (self._finished(True, DEGRADED_LABEL), True, "completed"),
            (self._finished(False, "timeout"), False, "timed_out"),
            (self._finished(False, "shed"), False, "shed"),
            (self._finished(False, CIRCUIT_OPEN_ERROR), False, "shed"),
            (self._finished(False, "connection_refused"), False, "rejected"),
            (self._finished(False, "throttled"), False, "rejected"),
            (self._finished(False, "instance_crash"), False, "failed"),
            (self._finished(False, "transient_error"), False, "failed"),
        ]
        for outcome, degraded, _bucket in cases:
            meter.record_submitted()
            meter.classify(outcome, degraded)
        notes = meter.notes()
        assert notes["submitted"] == len(cases)
        assert notes["submitted"] == (
            notes["completed"] + notes["failed"] + notes["rejected"]
            + notes["timed_out"] + notes["shed"])
        assert notes["completed"] == 2
        assert notes["degraded"] == 1  # a subset of completed, not a bucket
        assert notes["timed_out"] == 1
        assert notes["shed"] == 2
        assert notes["rejected"] == 2
        assert notes["failed"] == 2

    def test_hedges_are_telemetry_not_a_bucket(self):
        meter = RouterMeter()
        meter.record_submitted()
        meter.record_hedge()
        meter.classify(self._finished(True), False)
        notes = meter.notes()
        assert notes["hedges"] == 1
        assert notes["submitted"] == notes["completed"] == 1


# ---------------------------------------------------------------------------
# Composition layer
# ---------------------------------------------------------------------------

class TestRegionalComposition:
    def _router(self, **overrides):
        deployment = Planner().plan(
            "aws", "mobilenet", "tf1.15", "managed_ml",
            region_count=2, **overrides)
        return build_platform(Environment(), deployment,
                              rng=RandomStreams(SEED))

    def test_correlated_faults_strike_region_zero_only(self):
        router = self._router(outage_start_s=40.0, outage_duration_s=30.0,
                              outage_fraction=1.0)
        assert isinstance(router, MultiRegionPlatform)
        assert router.backends[0].config.outage_start_s == 40.0
        assert router.backends[1].config.outage_start_s is None

    def test_uncorrelated_faults_strike_every_region(self):
        router = self._router(crash_mtbf_s=60.0, request_error_rate=0.05)
        for backend in router.backends:
            assert backend.config.crash_mtbf_s == 60.0
            assert backend.config.request_error_rate == 0.05

    def test_regions_are_plain_single_region_platforms(self):
        router = self._router(breaker_failure_threshold=5,
                              hedge_percentile=95.0, retry_attempts=3)
        for backend in router.backends:
            config = backend.config
            assert not isinstance(backend, MultiRegionPlatform)
            assert config.region_count == 1
            assert config.breaker_failure_threshold == 0
            assert config.hedge_percentile == 0.0
            assert config.retry_attempts == 1  # retries stay client-side

    def test_region_latencies_default_and_inherit(self):
        router = self._router()
        assert router._latencies == (0.0, 0.03)
        spread = Planner().plan("aws", "mobilenet", "tf1.15", "managed_ml",
                                region_count=3, region_latency_s=(0.0, 0.02))
        router = build_platform(Environment(), spread,
                                rng=RandomStreams(SEED))
        assert router._latencies == (0.0, 0.02, 0.02)

    def test_brownout_backend_serves_the_cheap_model_fault_free(self):
        deployment = Planner().plan(
            "aws", "albert", "tf1.15", "managed_ml", region_count=2,
            outage_start_s=40.0, outage_duration_s=30.0,
            brownout_watermark=0.8, brownout_model="mobilenet")
        router = build_platform(Environment(), deployment,
                                rng=RandomStreams(SEED))
        degraded = router.degraded_backend
        assert degraded is not None
        assert degraded.model.name == "mobilenet"
        assert degraded.config.outage_start_s is None
        assert degraded.config.brownout_watermark == 0.0

    def test_single_region_never_constructs_a_router(self):
        deployment = Planner().plan("aws", "mobilenet", "tf1.15",
                                    "managed_ml", region_count=1,
                                    breaker_failure_threshold=5)
        platform = build_platform(Environment(), deployment,
                                  rng=RandomStreams(SEED))
        assert not isinstance(platform, MultiRegionPlatform)


# ---------------------------------------------------------------------------
# End to end
# ---------------------------------------------------------------------------

#: The chaos-outage schedule used by the failover study.
OUTAGE = dict(outage_start_s=40.0, outage_duration_s=30.0,
              outage_fraction=1.0, shed_watermark=1, retry_attempts=3,
              retry_base_delay_s=0.1, request_timeout_s=30.0)

#: Routing knobs of the failover-outage scenario.
ROUTED = dict(region_count=2, region_latency_s=(0.0, 0.03),
              routing_policy="priority", breaker_failure_threshold=5,
              breaker_cooldown_s=10.0)


@pytest.fixture(scope="module")
def outage_w40():
    from repro.workload.generator import standard_workload
    return standard_workload("w-40", seed=SEED, scale=0.3)


class TestFailoverEndToEnd:
    def test_multi_region_strictly_improves_availability_and_recovery(
            self, outage_w40):
        planner = Planner()
        single = planner.plan("aws", "mobilenet", "tf1.15", "managed_ml",
                              **OUTAGE)
        routed = planner.plan("aws", "mobilenet", "tf1.15", "managed_ml",
                              **OUTAGE, **ROUTED)
        _, single_table = run_platform(single, outage_w40)
        router, routed_table = run_platform(routed, outage_w40)
        single_avail = single_table.availability(bin_s=5.0)
        routed_avail = routed_table.availability(bin_s=5.0)
        assert routed_avail > single_avail
        single_ttr = single_table.time_to_recover(70.0, bin_s=5.0)
        routed_ttr = routed_table.time_to_recover(70.0, bin_s=5.0)
        # The single platform never recovers inside the horizon; the
        # routed one does — NaN orders after any finite recovery.
        assert not math.isnan(routed_ttr)
        assert math.isnan(single_ttr) or routed_ttr < single_ttr
        # Each retry attempt is its own platform submission, so the
        # client ledger's submitted count is the attempts total.
        assert (router.meter.notes()["submitted"]
                == int(routed_table.attempts.sum()))
        assert sum(breaker.trips for breaker in router.breakers) > 0

    def test_retry_pressure_drops_behind_the_router(self, outage_w40):
        planner = Planner()
        single = planner.plan("aws", "mobilenet", "tf1.15", "managed_ml",
                              **OUTAGE)
        routed = planner.plan("aws", "mobilenet", "tf1.15", "managed_ml",
                              **OUTAGE, **ROUTED)
        _, single_table = run_platform(single, outage_w40)
        _, routed_table = run_platform(routed, outage_w40)
        assert routed_table.attempts_mean() < single_table.attempts_mean()

    def test_hedging_fires_and_ledger_holds(self, tiny_w40):
        deployment = Planner().plan(
            "aws", "mobilenet", "tf1.15", "serverless",
            region_count=2, routing_policy="weighted",
            hedge_percentile=50.0, hedge_min_samples=8)
        router, table = run_platform(deployment, tiny_w40)
        notes = router.meter.notes()
        assert notes["hedges"] > 0
        assert notes["submitted"] == int(table.attempts.sum())
        assert notes["submitted"] == (
            notes["completed"] + notes["failed"] + notes["rejected"]
            + notes["timed_out"] + notes["shed"])

    def test_brownout_degrades_instead_of_queueing(self, tiny_w40):
        deployment = Planner().plan(
            "aws", "albert", "tf1.15", "managed_ml",
            region_count=2, initial_instances=1, max_instances=1,
            brownout_watermark=0.3, brownout_model="mobilenet")
        router, table = run_platform(deployment, tiny_w40)
        notes = router.meter.notes()
        assert notes["degraded"] > 0
        assert notes["degraded"] <= notes["completed"]
        assert table.degraded_ratio() > 0.0
        # Degraded completions are successes labelled, not failures.
        errors = set(table.error_strings())
        assert DEGRADED_LABEL in errors

    def test_conservation_property_across_schedules_and_policies(
            self, tiny_w40):
        """submitted == sum(buckets) for fault schedules x policies."""
        schedules = [
            dict(outage_start_s=10.0, outage_duration_s=15.0,
                 outage_fraction=1.0, shed_watermark=1),
            dict(crash_mtbf_s=20.0),
            dict(request_error_rate=0.1),
            dict(storm_times_s=(10.0, 25.0)),
            dict(crash_mtbf_s=30.0, request_error_rate=0.05,
                 retry_attempts=2),
        ]
        planner = Planner()
        for schedule in schedules:
            for policy in ("priority", "weighted"):
                kind = ("managed_ml" if "outage_start_s" in schedule
                        else "serverless")
                deployment = planner.plan(
                    "aws", "mobilenet", "tf1.15", kind,
                    region_count=2, routing_policy=policy,
                    breaker_failure_threshold=5, breaker_cooldown_s=5.0,
                    hedge_percentile=90.0, **schedule)
                router, table = run_platform(deployment, tiny_w40)
                notes = router.meter.notes()
                label = f"{schedule} x {policy}"
                assert notes["submitted"] == int(table.attempts.sum()), label
                assert notes["submitted"] == (
                    notes["completed"] + notes["failed"]
                    + notes["rejected"] + notes["timed_out"]
                    + notes["shed"]), label
                assert notes["degraded"] <= notes["completed"], label
                # Client rows match the router's client-level ledger.
                assert notes["completed"] == int(table.success.sum()), label

    def test_routed_chaos_cells_identical_across_worker_pool(self, tiny_w40):
        planner = Planner()
        deployments = [
            planner.plan("aws", "mobilenet", "tf1.15", "managed_ml",
                         region_count=2, routing_policy="priority",
                         breaker_failure_threshold=5,
                         outage_start_s=10.0, outage_duration_s=15.0,
                         outage_fraction=1.0, shed_watermark=1,
                         retry_attempts=2),
            planner.plan("aws", "mobilenet", "tf1.15", "serverless",
                         region_count=2, routing_policy="weighted",
                         crash_mtbf_s=30.0, hedge_percentile=90.0,
                         hedge_min_samples=16),
            planner.plan("aws", "albert", "tf1.15", "managed_ml",
                         region_count=3, routing_policy="weighted",
                         request_error_rate=0.05, brownout_watermark=0.7,
                         brownout_model="mobilenet"),
        ]
        bench = ServingBenchmark(seed=SEED)
        serial = bench.run_many(deployments, tiny_w40)
        parallel = bench.run_many(deployments, tiny_w40, workers=3)
        for left, right in zip(serial, parallel):
            assert left.table.column_hash() == right.table.column_hash()
            assert left.cost == right.cost

    def test_region_count_one_is_bit_identical_to_no_routing(self, tiny_w40):
        planner = Planner()
        plain = planner.plan("aws", "mobilenet", "tf1.15", "serverless")
        pinned = planner.plan("aws", "mobilenet", "tf1.15", "serverless",
                              region_count=1, routing_policy="weighted",
                              breaker_failure_threshold=5,
                              hedge_percentile=95.0)
        bench = ServingBenchmark(seed=SEED)
        assert (bench.run(plain, tiny_w40).table.column_hash()
                == bench.run(pinned, tiny_w40).table.column_hash())

    def test_regional_billing_is_audited_in_the_merged_usage(self, tiny_w40):
        deployment = Planner().plan(
            "aws", "mobilenet", "tf1.15", "managed_ml",
            region_count=2, outage_start_s=10.0, outage_duration_s=15.0,
            outage_fraction=1.0, shed_watermark=1)
        env = Environment()
        rng = RandomStreams(SEED)
        platform = build_platform(env, deployment, rng=rng)
        pool = RequestPool(
            sample_payload_mb=deployment.model.input_payload_mb,
            pool_size=tiny_w40.spec.request_pool_size, seed=SEED)
        executor = Executor(env=env, platform=platform, workload=tiny_w40,
                            request_pool=pool, rng=rng)
        executor.run(until=tiny_w40.spec.duration_s + 400.0)
        usage = platform.finalize(env.now)
        regional = [key for key in usage.notes if key.startswith("region")]
        assert any(key.startswith("region0.") for key in regional)
        assert any(key.startswith("region1.") for key in regional)
        assert usage.notes["breaker_trips"] >= 0
        assert usage.cost > 0
        assert usage.peak_instances == int(usage.instance_count.max())
