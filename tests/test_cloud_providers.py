"""Unit tests for provider descriptors, storage, network, and registry."""

import pytest

from repro.cloud import aws, gcp, get_provider
from repro.cloud.instances import get_instance_type, instance_catalog
from repro.cloud.network import NetworkModel
from repro.cloud.registry import ContainerRegistry
from repro.cloud.storage import ObjectStorage
from repro.sim import RandomStreams


class TestProviders:
    def test_get_provider_lookup(self):
        assert get_provider("aws").name == "aws"
        assert get_provider("GCP").name == "gcp"
        with pytest.raises(KeyError):
            get_provider("azure")

    def test_aws_storage_faster_than_gcp(self):
        assert (aws().storage.download_bandwidth_mbps
                > gcp().storage.download_bandwidth_mbps)

    def test_gcp_overprovisions_more(self):
        assert (gcp().serverless.overprovision_factor
                > aws().serverless.overprovision_factor)

    def test_gcp_sandbox_slower(self):
        assert gcp().serverless.sandbox_setup_s > aws().serverless.sandbox_setup_s

    def test_billing_init_flags(self):
        # Both platforms bill the cold-start initialisation: GCP always
        # does, and the paper deploys Lambda as container images, whose
        # init phase is part of the billed duration.
        assert aws().serverless.billing_includes_init is True
        assert gcp().serverless.billing_includes_init is True

    def test_instance_type_defaults(self):
        provider = aws()
        assert provider.managed_instance_type == "ml.m4.2xlarge"
        assert provider.cpu_instance_type == "m5.2xlarge"
        assert provider.gpu_instance_type == "g4dn.2xlarge"

    def test_with_serverless_produces_modified_copy(self):
        base = aws()
        modified = base.with_serverless(keep_alive_s=30.0)
        assert modified.serverless.keep_alive_s == 30.0
        assert base.serverless.keep_alive_s != 30.0
        assert modified.name == base.name

    def test_with_managed_and_vm_copies(self):
        base = gcp()
        assert base.with_managed_ml(max_instances=2).managed_ml.max_instances == 2
        assert base.with_vm(queue_capacity=5).vm.queue_capacity == 5


class TestInstanceCatalog:
    def test_catalog_contains_paper_shapes(self):
        catalog = instance_catalog()
        for name in ("ml.m4.2xlarge", "m5.2xlarge", "g4dn.2xlarge",
                     "n1-standard-8", "n1-standard-8-t4"):
            assert name in catalog

    def test_gpu_flags(self):
        assert get_instance_type("g4dn.2xlarge").has_gpu
        assert not get_instance_type("m5.2xlarge").has_gpu

    def test_unknown_instance(self):
        with pytest.raises(KeyError):
            get_instance_type("m1.tiny")


class TestStorage:
    def test_download_time_scales_with_size(self):
        storage = ObjectStorage(request_latency_s=0.1,
                                download_bandwidth_mbps=100.0, jitter_cv=0.0)
        small = storage.download_time(10)
        large = storage.download_time(100)
        assert large > small
        assert small == pytest.approx(0.1 + 0.1)

    def test_zero_size_is_free(self):
        storage = ObjectStorage(request_latency_s=0.1,
                                download_bandwidth_mbps=100.0)
        assert storage.download_time(0.0) == 0.0

    def test_negative_size_rejected(self):
        storage = ObjectStorage(request_latency_s=0.1,
                                download_bandwidth_mbps=100.0)
        with pytest.raises(ValueError):
            storage.download_time(-1.0)

    def test_jitter_changes_draws_but_not_scale(self):
        storage = ObjectStorage(request_latency_s=0.1,
                                download_bandwidth_mbps=100.0, jitter_cv=0.2)
        rng = RandomStreams(3)
        draws = {storage.download_time(50, rng) for _ in range(5)}
        assert len(draws) > 1
        assert all(0.1 < d < 5.0 for d in draws)


class TestNetwork:
    def test_round_trip_includes_both_directions(self):
        network = NetworkModel(one_way_latency_s=0.02, bandwidth_mbps=10.0,
                               jitter_cv=0.0)
        rtt = network.round_trip_time(1.0, 0.0)
        assert rtt == pytest.approx(0.02 + 0.1 + 0.02)

    def test_negative_payload_rejected(self):
        network = NetworkModel(one_way_latency_s=0.02, bandwidth_mbps=10.0)
        with pytest.raises(ValueError):
            network.transfer_time(-0.1)


class TestRegistry:
    def test_pull_probability_validation(self):
        with pytest.raises(ValueError):
            ContainerRegistry(first_pull_probability=1.5, pull_bandwidth_mbps=10)
        with pytest.raises(ValueError):
            ContainerRegistry(first_pull_probability=0.1, pull_bandwidth_mbps=0)

    def test_most_pulls_are_cached(self):
        registry = ContainerRegistry(first_pull_probability=0.02,
                                     pull_bandwidth_mbps=100.0)
        rng = RandomStreams(4)
        times = [registry.pull_time(1000, rng) for _ in range(500)]
        slow = [t for t in times if t > 0]
        assert 0 < len(slow) < 40
        assert all(t > 2.0 for t in slow)

    def test_zero_probability_never_pulls(self):
        registry = ContainerRegistry(first_pull_probability=0.0,
                                     pull_bandwidth_mbps=100.0)
        rng = RandomStreams(4)
        assert all(registry.pull_time(500, rng) == 0.0 for _ in range(100))
