"""Tests for the planner, executor, analyzer, metrics, and benchmark façade."""

import pytest

from repro.core import Analyzer, LatencyStats, Planner, ServingBenchmark, percentile
from repro.core.metrics import mean_or_zero, ratio
from repro.serving import PlatformKind
from repro.serving.records import RequestOutcome


class TestMetrics:
    def test_latency_stats_from_values(self):
        stats = LatencyStats.from_values([1.0, 2.0, 3.0, 4.0])
        assert stats.count == 4
        assert stats.mean == pytest.approx(2.5)
        assert stats.min == 1.0 and stats.max == 4.0
        assert stats.p50 == pytest.approx(2.5)
        assert set(stats.as_dict()) >= {"mean", "p99", "count"}

    def test_latency_stats_empty(self):
        stats = LatencyStats.from_values([])
        assert stats.count == 0 and stats.mean == 0.0

    def test_latency_stats_rejects_negative(self):
        with pytest.raises(ValueError):
            LatencyStats.from_values([-1.0])

    def test_percentile(self):
        assert percentile([1, 2, 3, 4], 50) == pytest.approx(2.5)
        assert percentile([], 99) == 0.0
        with pytest.raises(ValueError):
            percentile([1], 150)

    def test_helpers(self):
        assert mean_or_zero([]) == 0.0
        assert mean_or_zero([2, 4]) == 3.0
        assert ratio(1.0, 0.0) == 0.0
        assert ratio(1.0, 2.0) == 0.5


class TestPlanner:
    def test_plan_serverless_defaults(self, planner):
        deployment = planner.plan("aws", "mobilenet", "tf1.15", "serverless")
        assert deployment.config.memory_gb == 2.0
        assert deployment.provider.name == "aws"

    def test_plan_vm_disables_autoscaling(self, planner):
        deployment = planner.plan("gcp", "vgg", "tf1.15", "cpu_server")
        assert deployment.config.autoscaling is False

    def test_plan_managed_enables_autoscaling(self, planner):
        deployment = planner.plan("aws", "vgg", "tf1.15", "managed_ml")
        assert deployment.config.autoscaling is True
        assert deployment.config.initial_instances == 1

    def test_plan_accepts_objects(self, planner):
        from repro.cloud import gcp
        from repro.models import get_model
        from repro.runtimes import get_runtime
        deployment = planner.plan(gcp(), get_model("albert"),
                                  get_runtime("ort1.4"), "serverless")
        assert deployment.label == "gcp-serverless/albert/ort1.4"

    def test_plan_overrides(self, planner):
        deployment = planner.plan("aws", "mobilenet", "tf1.15", "serverless",
                                  memory_gb=8.0, batch_size=4)
        assert deployment.config.memory_gb == 8.0
        assert deployment.config.batch_size == 4

    def test_plan_matrix_skips_unsupported(self, planner):
        deployments = planner.plan_matrix(
            providers=["aws"], models=["mobilenet"],
            runtimes=["tf1.15", "ort1.4"],
            platforms=[PlatformKind.SERVERLESS, PlatformKind.MANAGED_ML])
        labels = {d.label for d in deployments}
        assert "aws-managed_ml/mobilenet/ort1.4" not in labels
        assert "aws-managed_ml/mobilenet/tf1.15" in labels
        assert len(deployments) == 3

    def test_plan_paper_systems(self, planner):
        systems = planner.plan_paper_systems("aws", "mobilenet")
        assert set(systems) == {"serverless", "managed_ml", "cpu_server",
                                "gpu_server"}
        # With ORT the managed service is unavailable.
        ort_systems = planner.plan_paper_systems("gcp", "mobilenet", "ort1.4")
        assert "managed_ml" not in ort_systems

    def test_unknown_platform(self, planner):
        with pytest.raises(ValueError):
            planner.plan("aws", "mobilenet", "tf1.15", "quantum")


class TestBenchmarkAndExecutor:
    def test_run_produces_complete_results(self, bench, planner, tiny_w40):
        deployment = planner.plan("aws", "mobilenet", "ort1.4", "serverless")
        result = bench.run(deployment, tiny_w40)
        assert result.total_requests == tiny_w40.count
        assert all(o.completion_time is not None for o in result.outcomes)
        assert result.duration_s > 0
        assert result.workload_name == "w-40"

    def test_request_ids_unique(self, bench, planner, tiny_w40):
        deployment = planner.plan("aws", "mobilenet", "ort1.4", "serverless")
        result = bench.run(deployment, tiny_w40)
        ids = [o.request_id for o in result.outcomes]
        assert len(ids) == len(set(ids))

    def test_clients_are_assigned(self, bench, planner, tiny_w40):
        deployment = planner.plan("aws", "mobilenet", "ort1.4", "serverless")
        result = bench.run(deployment, tiny_w40)
        clients = {o.client_id for o in result.outcomes}
        assert clients == set(range(8))

    def test_run_many_and_matrix(self, bench, planner, tiny_w40):
        deployments = [
            planner.plan("aws", "mobilenet", "ort1.4", "serverless"),
            planner.plan("aws", "mobilenet", "ort1.4", "gpu_server"),
        ]
        results = bench.run_many(deployments, tiny_w40)
        assert len(results) == 2
        matrix = bench.run_matrix(deployments, [tiny_w40])
        assert set(matrix) == {"w-40"}
        assert len(matrix["w-40"]) == 2

    def test_batch_executor_preserves_request_count(self, bench, planner,
                                                    tiny_w40):
        deployment = planner.plan("aws", "mobilenet", "ort1.4", "serverless",
                                  batch_size=4)
        result = bench.run(deployment, tiny_w40)
        assert result.total_requests == tiny_w40.count
        assert result.success_ratio > 0.99

    def test_as_row_fields(self, bench, planner, tiny_w40):
        deployment = planner.plan("gcp", "albert", "tf1.15", "serverless")
        result = bench.run(deployment, tiny_w40)
        row = result.as_row()
        assert row["provider"] == "gcp"
        assert row["model"] == "albert"
        assert row["requests"] == tiny_w40.count


class TestAnalyzer:
    @pytest.fixture
    def sample_result(self, bench, planner, tiny_w40):
        deployment = planner.plan("aws", "mobilenet", "tf1.15", "serverless")
        return bench.run(deployment, tiny_w40)

    def test_summarize(self, sample_result):
        analyzer = Analyzer()
        summary = analyzer.summarize(sample_result)
        assert 0.0 <= summary["success_ratio"] <= 1.0
        assert summary["p99_latency_s"] >= summary["p50_latency_s"]

    def test_latency_timeline_covers_workload(self, sample_result):
        analyzer = Analyzer()
        timeline = analyzer.latency_timeline(sample_result, bin_seconds=10.0)
        assert timeline
        assert sum(p.requests for p in timeline) == sample_result.total_requests
        assert all(0.0 <= p.success_ratio <= 1.0 for p in timeline)

    def test_latency_timeline_validation(self, sample_result):
        with pytest.raises(ValueError):
            Analyzer().latency_timeline(sample_result, bin_seconds=0)

    def test_instance_timeline(self, sample_result):
        timeline = Analyzer().instance_timeline(sample_result, bin_seconds=10.0)
        assert timeline
        assert max(count for _, count in timeline) >= 1

    def test_breakdown_consistency(self, sample_result):
        breakdown = Analyzer().coldstart_breakdown(sample_result)
        assert breakdown.cold_requests > 0
        assert breakdown.cold_e2e > breakdown.warm_e2e
        assert breakdown.cold_e2e >= breakdown.cold_import
        assert breakdown.warm_predict <= breakdown.warm_e2e
        assert set(breakdown.as_dict()) == {
            "E2E (cs)", "import", "download", "load", "predict (cs)",
            "E2E (wu)", "predict (wu)"}

    def test_comparison_table_sorted(self, bench, planner, tiny_w40,
                                     sample_result):
        gpu = bench.run(
            planner.plan("aws", "mobilenet", "tf1.15", "gpu_server"), tiny_w40)
        rows = Analyzer().comparison_table([gpu, sample_result])
        assert len(rows) == 2
        assert rows[0]["platform"] <= rows[1]["platform"]

    def test_speedup_and_cost_ratio(self, bench, planner, tiny_w40,
                                    sample_result):
        analyzer = Analyzer()
        assert analyzer.speedup(sample_result, sample_result) == pytest.approx(1.0)
        assert analyzer.cost_ratio(sample_result, sample_result) == pytest.approx(1.0)
