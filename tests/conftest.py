"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.benchmark import ServingBenchmark
from repro.core.planner import Planner
from repro.models.profiles import LatencyProfiles
from repro.sim import Environment, RandomStreams
from repro.workload.generator import standard_workload


@pytest.fixture
def env() -> Environment:
    """A fresh simulation environment."""
    return Environment()


@pytest.fixture
def rng() -> RandomStreams:
    """Deterministic random streams."""
    return RandomStreams(seed=123)


@pytest.fixture
def planner() -> Planner:
    """A deployment planner."""
    return Planner()


@pytest.fixture
def profiles() -> LatencyProfiles:
    """The built-in latency calibration."""
    return LatencyProfiles()


@pytest.fixture
def bench() -> ServingBenchmark:
    """A benchmark façade with a fixed seed."""
    return ServingBenchmark(seed=5)


@pytest.fixture(scope="session")
def tiny_w40():
    """A small (5%) copy of the w-40 workload shared across tests."""
    return standard_workload("w-40", seed=5, scale=0.05)


@pytest.fixture(scope="session")
def small_w120():
    """A small (8%) copy of the w-120 workload shared across tests."""
    return standard_workload("w-120", seed=5, scale=0.08)
