"""Unit and property-based tests for arrival traces and the splitter."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.splitter import merge_traces, split_trace
from repro.workload.traces import ArrivalTrace


def make_trace(times, name="t"):
    return ArrivalTrace(np.asarray(sorted(times), dtype=float), name=name)


class TestArrivalTrace:
    def test_basic_properties(self):
        trace = make_trace([0.0, 1.0, 2.0, 4.0])
        assert trace.count == 4
        assert trace.duration == 4.0
        assert trace.mean_rate == pytest.approx(1.0)

    def test_empty_trace(self):
        trace = make_trace([])
        assert trace.count == 0
        assert trace.duration == 0.0
        assert trace.mean_rate == 0.0
        assert trace.peak_rate() == 0.0

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError):
            ArrivalTrace(np.array([2.0, 1.0]))

    def test_negative_times_rejected(self):
        with pytest.raises(ValueError):
            ArrivalTrace(np.array([-1.0, 1.0]))

    def test_rate_series_counts_all_requests(self):
        trace = make_trace([0.1, 0.2, 1.5, 2.7, 2.8, 2.9])
        times, rates = trace.rate_series(1.0)
        assert rates.sum() == pytest.approx(trace.count)
        assert times[0] == 0.0

    def test_peak_rate(self):
        trace = make_trace([0.1, 0.2, 0.3, 5.0])
        assert trace.peak_rate(1.0) == 3.0

    def test_shifted(self):
        trace = make_trace([1.0, 2.0])
        shifted = trace.shifted(3.0)
        assert list(shifted.times) == [4.0, 5.0]
        with pytest.raises(ValueError):
            trace.shifted(-5.0)

    def test_scaled_rate(self):
        trace = make_trace([2.0, 4.0])
        faster = trace.scaled_rate(2.0)
        assert list(faster.times) == [1.0, 2.0]
        with pytest.raises(ValueError):
            trace.scaled_rate(0.0)

    def test_window(self):
        trace = make_trace([1.0, 2.0, 3.0, 4.0])
        window = trace.window(2.0, 4.0)
        assert list(window.times) == [0.0, 1.0]

    def test_subsample_bounds(self):
        trace = make_trace(np.linspace(0, 100, 1000))
        thinned = trace.subsampled(0.5, seed=1)
        assert 300 < thinned.count < 700
        with pytest.raises(ValueError):
            trace.subsampled(0.0)

    def test_interarrival_times(self):
        trace = make_trace([1.0, 3.0, 6.0])
        assert list(trace.interarrival_times()) == [2.0, 3.0]

    def test_summary_keys(self):
        summary = make_trace([0.0, 1.0]).summary()
        assert {"name", "requests", "duration_s", "mean_rate",
                "peak_rate_1s"} <= set(summary)


class TestSplitter:
    def test_split_preserves_all_arrivals(self):
        trace = make_trace(np.linspace(0, 10, 37))
        parts = split_trace(trace, 8)
        assert sum(len(p) for p in parts) == trace.count

    def test_split_round_robin_even(self):
        trace = make_trace(np.linspace(0, 10, 40))
        parts = split_trace(trace, 8)
        assert all(len(p) == 5 for p in parts)

    def test_merge_inverts_split(self):
        trace = make_trace(np.sort(np.random.default_rng(0).uniform(0, 100, 200)))
        merged = merge_traces(split_trace(trace, 8))
        assert np.allclose(merged.times, trace.times)

    def test_split_validation(self):
        with pytest.raises(ValueError):
            split_trace(make_trace([1.0]), 0)

    def test_merge_empty(self):
        merged = merge_traces([])
        assert merged.count == 0


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------
arrival_lists = st.lists(
    st.floats(min_value=0.0, max_value=1000.0, allow_nan=False,
              allow_infinity=False),
    min_size=0, max_size=200)


class TestTraceProperties:
    @given(arrival_lists)
    @settings(max_examples=60, deadline=None)
    def test_rate_series_conserves_requests(self, times):
        trace = ArrivalTrace.from_times(times)
        _, rates = trace.rate_series(1.0)
        assert rates.sum() == pytest.approx(trace.count)

    @given(arrival_lists, st.integers(min_value=1, max_value=16))
    @settings(max_examples=60, deadline=None)
    def test_split_merge_roundtrip(self, times, clients):
        trace = ArrivalTrace.from_times(times)
        merged = merge_traces(split_trace(trace, clients))
        assert merged.count == trace.count
        assert np.allclose(np.sort(merged.times), np.sort(trace.times))

    @given(arrival_lists, st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_subsample_never_grows(self, times, fraction):
        trace = ArrivalTrace.from_times(times)
        thinned = trace.subsampled(fraction, seed=0)
        assert thinned.count <= trace.count
        assert np.all(np.diff(thinned.times) >= 0) if thinned.count else True

    @given(arrival_lists, st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=60, deadline=None)
    def test_scaled_rate_preserves_count(self, times, factor):
        trace = ArrivalTrace.from_times(times)
        assert trace.scaled_rate(factor).count == trace.count
