"""Semantics guarded by the fast-path engine optimisations.

The hot-path rework (tombstone cancellation, direct process resumption,
O(1) platform accounting, parallel cell fan-out) must not change any
observable behaviour.  These tests pin down the contracts:

* :meth:`Event.cancel` semantics before/after processing and inside
  ``AnyOf`` conditions, including tombstone reclamation.
* The serverless platform's O(1) alive counter agrees with a
  brute-force scan over every instance ever created.
* ``run_matrix(workers=N)`` returns results identical to serial mode.
"""

import pytest

from repro.core.benchmark import ServingBenchmark
from repro.core.executor import Executor
from repro.core.planner import Planner
from repro.platforms.serverless import ServerlessPlatform
from repro.sim import Environment, RandomStreams, SimulationError
from repro.workload.generator import standard_workload
from repro.workload.requests import RequestPool


class TestCancellableTimers:
    def test_cancel_before_trigger_time_suppresses_callbacks(self, env):
        fired = []
        timeout = env.timeout(5.0)
        timeout.callbacks.append(lambda event: fired.append(env.now))
        assert timeout.cancel() is True
        assert timeout.cancelled
        env.timeout(10.0)  # keep the run going past the cancelled entry
        env.run()
        assert fired == []
        assert env.now == 10.0

    def test_cancel_after_processed_is_noop(self, env):
        timeout = env.timeout(1.0)
        env.run()
        assert timeout.processed
        assert timeout.cancel() is False
        assert not timeout.cancelled

    def test_cancel_returns_false_on_second_call(self, env):
        timeout = env.timeout(1.0)
        assert timeout.cancel() is True
        assert timeout.cancel() is False

    def test_cancelled_event_cannot_be_triggered(self, env):
        event = env.event()
        event.cancel()
        with pytest.raises(SimulationError):
            event.succeed()
        with pytest.raises(SimulationError):
            event.fail(RuntimeError("boom"))

    def test_cancel_loser_of_any_of_race(self, env):
        """The platform pattern: cancel the guard timer after winning."""
        log = []

        def proc():
            fast = env.timeout(1.0, value="fast")
            guard = env.timeout(300.0, value="guard")
            result = yield env.any_of([fast, guard])
            assert guard not in result
            guard.cancel()
            log.append(env.now)

        env.process(proc())
        env.run()
        # The dead 300 s guard must not extend the run.
        assert log == [1.0]
        assert env.now < 300.0

    def test_cancel_member_before_any_of_fires(self, env):
        results = []

        def proc():
            early = env.timeout(2.0, value="early")
            late = env.timeout(8.0, value="late")
            early.cancel()
            result = yield env.any_of([early, late])
            results.append((env.now, early in result, late in result))

        env.process(proc())
        env.run()
        # The cancelled member never counts as fired.
        assert results == [(8.0, False, True)]

    def test_yield_cancelled_event_rejected(self, env):
        timeout = env.timeout(1.0)
        timeout.cancel()

        def proc():
            yield timeout

        # The first step runs inline, so yielding a cancelled event as
        # the first yield is rejected at the env.process() call itself.
        with pytest.raises(SimulationError):
            env.process(proc())

    def test_yield_cancelled_event_rejected_mid_process(self, env):
        timeout = env.timeout(1.0)
        timeout.cancel()

        def proc():
            yield env.timeout(0.5)
            yield timeout

        env.process(proc())
        with pytest.raises(SimulationError):
            env.run()

    def test_tombstones_are_reclaimed(self, env):
        """Mass cancellation must not leave the heap full of corpses."""
        timeouts = [env.timeout(100.0 + i) for i in range(500)]
        for timeout in timeouts:
            timeout.cancel()
        # Compaction keeps the calendar proportional to live entries.
        assert len(env._queue) < 200
        env.timeout(1.0)
        env.run()
        assert env.now == pytest.approx(1.0)

    def test_peek_skips_tombstones(self, env):
        first = env.timeout(1.0)
        env.timeout(5.0)
        first.cancel()
        assert env.peek() == 5.0

    def test_step_skips_tombstones(self, env):
        first = env.timeout(1.0)
        env.timeout(5.0)
        first.cancel()
        env.step()
        assert env.now == 5.0


class TestAliveCounterConsistency:
    def _run_serverless(self, monkeypatch, workload):
        """Run one serverless experiment, capturing every instance."""
        tracked = []
        original = ServerlessPlatform._instance_loop

        def spy(self, instance, prewarmed, first_request=None):
            tracked.append(instance)
            return original(self, instance, prewarmed, first_request)

        monkeypatch.setattr(ServerlessPlatform, "_instance_loop", spy)
        env = Environment()
        deployment = Planner().plan("aws", "mobilenet", "tf1.15",
                                    "serverless")
        platform = ServerlessPlatform(env, deployment,
                                      rng=RandomStreams(3))
        pool = RequestPool(
            sample_payload_mb=deployment.model.input_payload_mb,
            pool_size=workload.spec.request_pool_size, seed=3)
        executor = Executor(env=env, platform=platform, workload=workload,
                            request_pool=pool, rng=RandomStreams(3))
        executor.run(until=workload.spec.duration_s + 400.0)
        return platform, tracked

    def test_alive_counter_matches_brute_force_scan(self, monkeypatch,
                                                    tiny_w40):
        platform, tracked = self._run_serverless(monkeypatch, tiny_w40)
        assert tracked, "expected at least one instance"
        brute_force = sum(1 for instance in tracked if instance.alive)
        assert platform.pool.alive == brute_force
        assert platform.pool.created == len(tracked)
        # The gauge's last recorded value is the O(1) counter.
        assert platform.pool.gauge.value == platform.pool.alive

    def test_usage_counts_match_tracked_instances(self, monkeypatch,
                                                  tiny_w40):
        platform, tracked = self._run_serverless(monkeypatch, tiny_w40)
        usage = platform.finalize()
        assert usage.instances_created == len(tracked)
        assert usage.peak_instances <= len(tracked)
        assert usage.peak_instances >= 1


class TestParallelEquality:
    def _key_metrics(self, result):
        return (result.total_requests, result.success_ratio,
                result.average_latency, result.cost,
                result.usage.instances_created, result.usage.cold_starts,
                [outcome.completion_time for outcome in result.outcomes])

    def test_run_matrix_parallel_identical_to_serial(self):
        planner = Planner()
        deployments = [planner.plan("aws", "mobilenet", "tf1.15", platform)
                       for platform in ("serverless", "cpu_server")]
        workloads = [standard_workload("w-40", seed=11, scale=0.04)]
        bench = ServingBenchmark(seed=11)
        serial = bench.run_matrix(deployments, workloads)
        parallel = bench.run_matrix(deployments, workloads, workers=4)
        assert serial.keys() == parallel.keys()
        for name in serial:
            assert len(serial[name]) == len(parallel[name])
            for left, right in zip(serial[name], parallel[name]):
                assert self._key_metrics(left) == self._key_metrics(right)

    def test_run_many_parallel_identical_to_serial(self):
        planner = Planner()
        deployments = [planner.plan("gcp", "mobilenet", "tf1.15", platform)
                       for platform in ("serverless", "managed_ml")]
        workload = standard_workload("w-40", seed=13, scale=0.04)
        bench = ServingBenchmark(seed=13)
        serial = bench.run_many(deployments, workload)
        parallel = bench.run_many(deployments, workload, workers=2)
        for left, right in zip(serial, parallel):
            assert self._key_metrics(left) == self._key_metrics(right)

    def test_run_records_events_processed(self, tiny_w40):
        deployment = Planner().plan("aws", "mobilenet", "tf1.15",
                                    "serverless")
        result = ServingBenchmark(seed=5).run(deployment, tiny_w40)
        assert result.metadata["events_processed"] > 0
