"""Successive-halving search: invariants, budget math, and acceptance.

Three layers:

* property-based (hypothesis) invariants of the halving schedule —
  determinism, eta-exact rung sizes, winner membership in every rung's
  survivor set, and the simulated-cell budget;
* the ISSUE acceptance bar on a 512-candidate design space: halving
  finds the exhaustive-grid winner on >= 2 of 3 reference cost surfaces
  while simulating <= 25 % of the cells (closed-form evaluator, so the
  512-cell "grid" is instant);
* run-cache reuse on a real simulated grid: a second search through the
  same experiment context issues zero new rung-0 simulations.
"""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scenario import ScenarioSpec
from repro.core.study import DEFAULT_BASE_SEED, Sweep
from repro.experiments.base import ExperimentContext
from repro.tools.navigator import NavigationConstraints
from repro.tools.search import (
    HalvingResult,
    SearchStudy,
    SuccessiveHalvingSearch,
    rung_fidelities,
    rung_sizes,
)


def _base_key(spec):
    """The candidate's identity with the per-rung seed/fidelity stripped."""
    key = spec.cell_key
    for marker in ("/seed=", "/fidelity="):
        if marker in key:
            key = key.split(marker)[0]
    return key


def _jitter(spec, salt=""):
    """Deterministic pseudo-noise in [-1, 1] from the candidate identity."""
    digest = hashlib.sha256(
        f"{_base_key(spec)}/{spec.seed}/{salt}".encode()).digest()
    return int.from_bytes(digest[:4], "big") / 2 ** 31 - 1.0


def _candidates(count, name="prop"):
    """``count`` distinct serverless candidates (memory axis)."""
    return [ScenarioSpec(name=f"{name}/{i}", provider="aws",
                         model="mobilenet",
                         config={"memory_gb": 1.0 + 0.5 * i})
            for i in range(count)]


def _surface_evaluator(surface_seed, amplitude=0.05):
    """A closed-form evaluator with fidelity-shrinking measurement noise."""
    def true_cost(spec):
        return 1.0 + _jitter(spec.with_seed(None).with_fidelity(None),
                             salt=f"true/{surface_seed}")

    def evaluator(spec):
        fidelity = spec.fidelity if spec.fidelity is not None else 1.0
        noise = amplitude * (1.0 - fidelity) * _jitter(
            spec, salt=f"noise/{surface_seed}")
        return {"avg_latency_s": 0.1, "success_ratio": 1.0,
                "cost_usd": true_cost(spec) + noise}

    return evaluator


class TestSchedules:
    def test_rung_sizes_follow_eta_exactly(self):
        assert rung_sizes(18, 3) == [18, 6, 2, 1]
        assert rung_sizes(512, 3) == [512, 170, 56, 18, 6, 2, 1]
        assert rung_sizes(1, 2) == [1]

    def test_rung_fidelities_end_at_full_length(self):
        fidelities = rung_fidelities(4, 3)
        assert fidelities[-1] == 1.0
        assert fidelities == sorted(fidelities)
        assert all(f >= 0.02 for f in fidelities)

    def test_schedule_validation(self):
        with pytest.raises(ValueError, match="candidates"):
            rung_sizes(0, 3)
        with pytest.raises(ValueError, match="eta"):
            rung_sizes(4, 1)
        with pytest.raises(ValueError, match="rungs"):
            rung_fidelities(0, 3)
        with pytest.raises(ValueError, match="eta"):
            SuccessiveHalvingSearch(eta=1)
        with pytest.raises(ValueError, match="budget_cells"):
            SuccessiveHalvingSearch(budget_cells=0)
        with pytest.raises(ValueError, match="min_fidelity"):
            SuccessiveHalvingSearch(min_fidelity=0.0)


class TestHalvingProperties:
    @given(st.integers(min_value=2, max_value=48),
           st.integers(min_value=2, max_value=4),
           st.integers(min_value=0, max_value=999))
    @settings(max_examples=40, deadline=None)
    def test_survivors_deterministic_given_seed(self, count, eta,
                                                surface_seed):
        evaluator = _surface_evaluator(surface_seed)
        search = SuccessiveHalvingSearch(eta=eta)
        first = search.search(_candidates(count), evaluator=evaluator)
        second = search.search(_candidates(count), evaluator=evaluator)
        assert [r.survivors for r in first.rungs] == \
            [r.survivors for r in second.rungs]
        assert first.best == second.best

    @given(st.integers(min_value=1, max_value=64),
           st.integers(min_value=2, max_value=5),
           st.integers(min_value=0, max_value=999))
    @settings(max_examples=40, deadline=None)
    def test_rung_sizes_match_eta_recurrence(self, count, eta, surface_seed):
        result = SuccessiveHalvingSearch(eta=eta).search(
            _candidates(count),
            evaluator=_surface_evaluator(surface_seed))
        sizes = [rung.size for rung in result.rungs]
        assert sizes == rung_sizes(count, eta)
        for previous, current in zip(sizes, sizes[1:]):
            assert current == max(1, previous // eta)
        # Per-rung seeds derive exactly like replicate seeds.
        assert [rung.seed for rung in result.rungs] == \
            [DEFAULT_BASE_SEED + r for r in range(len(sizes))]

    @given(st.integers(min_value=2, max_value=48),
           st.integers(min_value=2, max_value=4),
           st.integers(min_value=0, max_value=999))
    @settings(max_examples=40, deadline=None)
    def test_winner_survives_every_rung(self, count, eta, surface_seed):
        result = SuccessiveHalvingSearch(eta=eta).search(
            _candidates(count),
            evaluator=_surface_evaluator(surface_seed))
        assert result.found
        winner_key = result.rungs[-1].survivors[0]
        for rung in result.rungs:
            assert winner_key in rung.survivors

    @given(st.integers(min_value=4, max_value=64),
           st.integers(min_value=2, max_value=4),
           st.integers(min_value=1, max_value=80),
           st.integers(min_value=0, max_value=999))
    @settings(max_examples=40, deadline=None)
    def test_total_cells_never_exceed_budget(self, count, eta, budget,
                                             surface_seed):
        search = SuccessiveHalvingSearch(eta=eta, budget_cells=budget)
        candidates = _candidates(count)
        evaluator = _surface_evaluator(surface_seed)
        if budget < sum(rung_sizes(1, eta)):
            with pytest.raises(ValueError, match="budget"):
                search.search(candidates, evaluator=evaluator,
                              scorer=lambda spec: 0.0)
            return
        result = search.search(candidates, evaluator=evaluator,
                               scorer=lambda spec: _jitter(spec))
        assert result.total_evaluations <= budget
        assert result.total_simulated <= budget
        # Nothing vanishes: simulated pool + analytic ranking = space.
        assert result.rungs[0].size + len(result.analytic_only) == count


class TestHalvingBehaviour:
    def test_duplicate_candidates_rejected(self):
        spec = ScenarioSpec(name="dup", provider="aws", model="mobilenet")
        with pytest.raises(ValueError, match="duplicate"):
            SuccessiveHalvingSearch().search(
                [spec, spec], evaluator=_surface_evaluator(0))

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            SuccessiveHalvingSearch().search(
                [], evaluator=_surface_evaluator(0))

    def test_infeasible_candidates_rank_last(self):
        candidates = _candidates(6)

        def evaluator(spec):
            memory = spec.overrides["memory_gb"]
            # The cheapest two candidates violate the latency bound.
            return {"avg_latency_s": 2.0 if memory < 2.0 else 0.2,
                    "success_ratio": 1.0, "cost_usd": memory}

        result = SuccessiveHalvingSearch(eta=2).search(
            candidates, NavigationConstraints(max_latency_s=1.0),
            evaluator=evaluator)
        assert result.found
        assert result.best["memory_gb"] == 2.0
        assert all(not row["feasible"] or row["memory_gb"] >= 2.0
                   for row in result.evaluated)

    def test_frame_meta_reports_rung_counts(self):
        result = SuccessiveHalvingSearch(eta=3).search(
            _candidates(18), evaluator=_surface_evaluator(1))
        meta = result.frame.meta["halving"]
        assert meta["eta"] == 3
        assert [r["candidates"] for r in meta["rungs"]] == [18, 6, 2, 1]
        assert [r["survivors"] for r in meta["rungs"]] == [6, 2, 1, 1]
        assert [r["eliminated"] for r in meta["rungs"]] == [12, 4, 1, 0]
        assert all(r["simulated"] + r["cached"] == r["candidates"]
                   for r in meta["rungs"])

    def test_labelled_sweep_cells_carry_labels_into_frame(self):
        sweep = Sweep(name="lab",
                      base=ScenarioSpec(name="lab", provider="aws",
                                        model="mobilenet"),
                      axes={"memory_gb": (2.0, 4.0, 8.0)})
        result = SuccessiveHalvingSearch(eta=3).search(
            sweep.cells(), evaluator=_surface_evaluator(2))
        assert "memory_gb" in result.frame.columns
        assert result.best["memory_gb"] in (2.0, 4.0, 8.0)


class TestAcceptance512:
    """The ISSUE bar: 512 candidates, <= 25 % simulated, grid agreement."""

    AXES = {"memory_gb": tuple(1.0 + a for a in range(8)),
            "batch_size": tuple(1 + b for b in range(8)),
            "target_per_instance": tuple(4.0 + 2 * c for c in range(8))}
    LABELS = tuple(AXES)
    #: Per-"workload" quadratic cost bowls with distinct minima, plus a
    #: hash tiebreak for uniqueness and fidelity-shrinking noise: the
    #: three reference surfaces the halving search must agree with the
    #: exhaustive grid on.
    MINIMA = {"w-ref-a": (2.0, 3, 8.0), "w-ref-b": (6.0, 6, 14.0),
              "w-ref-c": (4.0, 1, 18.0)}

    def _sweep(self):
        return Sweep(name="space",
                     base=ScenarioSpec(name="space", provider="aws",
                                       model="mobilenet"),
                     axes=self.AXES)

    def _evaluator(self, workload, amplitude=0.05):
        minimum = self.MINIMA[workload]

        def true_cost(spec):
            distance = sum(
                ((spec.overrides[axis] - target) / 2.0) ** 2
                for axis, target in zip(self.LABELS, minimum))
            tiebreak = 1e-6 * _jitter(
                spec.with_seed(None).with_fidelity(None), salt=workload)
            return 0.1 * distance + 1.0 + tiebreak

        def evaluator(spec):
            fidelity = spec.fidelity if spec.fidelity is not None else 1.0
            noise = amplitude * (1.0 - fidelity) * _jitter(
                spec, salt=f"noise/{workload}")
            return {"avg_latency_s": 0.1, "success_ratio": 1.0,
                    "cost_usd": true_cost(spec) + noise}

        return evaluator, true_cost

    def _design(self, row):
        return tuple(row[axis] for axis in self.LABELS)

    def test_matches_exhaustive_grid_within_quarter_budget(self):
        cells = self._sweep().cells()
        assert len(cells) == 512
        budget = len(cells) // 4  # 128 cells = 25 %
        matches = 0
        for workload in self.MINIMA:
            evaluator, true_cost = self._evaluator(workload)
            # Exhaustive grid: every candidate at full fidelity.
            exhaustive = min(
                cells, key=lambda cell: (
                    evaluator(cell.spec.with_seed(
                        DEFAULT_BASE_SEED))["cost_usd"],
                    cell.spec.cell_key))
            result = SuccessiveHalvingSearch(
                eta=3, budget_cells=budget).search(
                    cells, NavigationConstraints(),
                    evaluator=evaluator,
                    scorer=lambda spec: true_cost(spec)
                    + 0.02 * _jitter(spec, salt="analytic"))
            assert result.found
            assert result.total_simulated <= budget
            assert result.total_simulated <= 0.25 * len(cells)
            # The excluded candidates come back analytically ranked.
            assert len(result.analytic_only) == \
                len(cells) - result.rungs[0].size
            assert all("analytic_score" in row and "analytic_rank" in row
                       for row in result.analytic_only)
            if self._design(result.best) == \
                    self._design(dict(exhaustive.labels)):
                matches += 1
        assert matches >= 2

    def test_budget_schedule_is_maximal(self):
        cells = self._sweep().cells()
        evaluator, _ = self._evaluator("w-ref-a")
        result = SuccessiveHalvingSearch(eta=3, budget_cells=128).search(
            cells, evaluator=evaluator, scorer=lambda spec: _jitter(spec))
        entry = result.rungs[0].size
        assert sum(rung_sizes(entry, 3)) <= 128
        assert sum(rung_sizes(entry + 1, 3)) > 128


class TestRunCacheReuse:
    def test_second_search_issues_zero_new_simulations(self):
        sweep = Sweep(name="cache",
                      base=ScenarioSpec(name="cache", provider="aws",
                                        model="mobilenet", workload="w-40"),
                      axes={"memory_gb": (2.0, 4.0),
                            "batch_size": (1, 2)})
        context = ExperimentContext(scale=0.05)
        search = SuccessiveHalvingSearch(eta=2)
        first = search.search(sweep.cells(), NavigationConstraints(),
                              context=context)
        assert all(rung.cached == 0 for rung in first.rungs)
        runs_after_first = len(context._runs)
        second = search.search(sweep.cells(), NavigationConstraints(),
                               context=context)
        assert len(context._runs) == runs_after_first
        assert second.rungs[0].simulated == 0
        assert second.rungs[0].cached == second.rungs[0].size
        assert all(rung.simulated == 0 for rung in second.rungs)
        assert first.best == second.best
        assert [r.survivors for r in first.rungs] == \
            [r.survivors for r in second.rungs]


class TestSearchStudy:
    def test_runner_receives_budget_and_eta(self):
        captured = {}

        def runner(context, eta=3, budget_cells=None):
            captured.update(eta=eta, budget=budget_cells,
                            context=context)
            from repro.core.study import ResultFrame
            return ResultFrame({"cost_usd": [1.0]})

        study = SearchStudy(name="stub-search", sweeps=(), runner=runner,
                            eta=4, budget_cells=9)
        frame = study.run(ExperimentContext(scale=0.1))
        assert len(frame) == 1
        assert captured["eta"] == 4
        assert captured["budget"] == 9
        resized = study.with_budget(21)
        resized.run(captured["context"])
        assert captured["budget"] == 21

    def test_registered_navigator_halving_study(self):
        from repro.experiments.base import load_registered_studies
        from repro.core.study import get_study
        load_registered_studies()
        assert "navigator-halving" in load_registered_studies()
        study = get_study("navigator-halving")
        assert isinstance(study, SearchStudy)
        # The declared grid is bookkeeping: 2 runtimes x 3 x 3.
        assert len(study.cells()) == 18

    def test_cli_budget_rejected_for_plain_studies(self):
        from repro.experiments.runner import main
        with pytest.raises(SystemExit):
            main(["sweep", "fig15", "--budget", "4"])

    def test_cli_replicates_rejected_for_search_studies(self):
        from repro.experiments.runner import main
        with pytest.raises(SystemExit):
            main(["sweep", "navigator-halving", "--replicates", "2"])


class TestNavigatorHalvingIntegration:
    def test_navigator_halving_reuses_grid_cache(self):
        from repro.tools.navigator import DesignSpaceNavigator
        navigator = DesignSpaceNavigator(
            provider="aws", model="mobilenet",
            runtimes=("tf1.15",), memory_sizes_gb=(2.0, 4.0),
            batch_sizes=(1, 2))
        context = ExperimentContext(scale=0.05)
        result = navigator.search(strategy="halving", context=context,
                                  eta=2)
        assert result.found
        assert result.halving is not None
        assert isinstance(result.halving, HalvingResult)
        assert [r.size for r in result.halving.rungs] == [4, 2, 1]
        runs = len(context._runs)
        again = navigator.search(strategy="halving", context=context,
                                 eta=2)
        assert len(context._runs) == runs
        assert again.halving.rungs[0].simulated == 0
        assert again.best == result.best

    def test_strategy_validation(self):
        from repro.tools.navigator import DesignSpaceNavigator
        from repro.workload.generator import standard_workload
        navigator = DesignSpaceNavigator(provider="aws", model="mobilenet")
        with pytest.raises(ValueError, match="grid"):
            navigator.search()  # grid needs an explicit workload
        with pytest.raises(ValueError, match="halving"):
            navigator.search(standard_workload("w-40", scale=0.05),
                             strategy="halving")
        with pytest.raises(ValueError, match="strategy"):
            navigator.search(strategy="annealing")
