"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.sim import Environment, Interrupt, SimulationError
from repro.sim.engine import AllOf, AnyOf, Timeout


class TestClockAndTimeouts:
    def test_time_starts_at_zero(self, env):
        assert env.now == 0.0

    def test_timeout_advances_clock(self, env):
        log = []

        def proc():
            yield env.timeout(5.0)
            log.append(env.now)

        env.process(proc())
        env.run()
        assert log == [5.0]

    def test_negative_timeout_rejected(self, env):
        with pytest.raises(SimulationError):
            env.timeout(-1.0)

    def test_run_until_stops_early(self, env):
        log = []

        def proc():
            yield env.timeout(10.0)
            log.append("late")

        env.process(proc())
        env.run(until=5.0)
        assert log == []
        assert env.now == 5.0

    def test_run_until_before_now_rejected(self, env):
        env.run(until=3.0)
        with pytest.raises(SimulationError):
            env.run(until=1.0)

    def test_events_processed_in_time_order(self, env):
        order = []

        def proc(delay, name):
            yield env.timeout(delay)
            order.append(name)

        env.process(proc(3.0, "c"))
        env.process(proc(1.0, "a"))
        env.process(proc(2.0, "b"))
        env.run()
        assert order == ["a", "b", "c"]

    def test_same_time_events_fifo(self, env):
        order = []

        def proc(name):
            yield env.timeout(1.0)
            order.append(name)

        for name in "abc":
            env.process(proc(name))
        env.run()
        assert order == ["a", "b", "c"]

    def test_timeout_carries_value(self, env):
        seen = []

        def proc():
            value = yield env.timeout(1.0, value="payload")
            seen.append(value)

        env.process(proc())
        env.run()
        assert seen == ["payload"]

    def test_peek_reports_next_event_time(self, env):
        env.timeout(4.0)
        assert env.peek() == 4.0

    def test_peek_empty_is_infinite(self, env):
        assert env.peek() == float("inf")

    def test_step_without_events_raises(self, env):
        with pytest.raises(SimulationError):
            env.step()


class TestEvents:
    def test_event_succeed_delivers_value(self, env):
        event = env.event()
        received = []

        def waiter():
            value = yield event
            received.append(value)

        def trigger():
            yield env.timeout(2.0)
            event.succeed(42)

        env.process(waiter())
        env.process(trigger())
        env.run()
        assert received == [42]

    def test_event_cannot_trigger_twice(self, env):
        event = env.event()
        event.succeed(1)
        with pytest.raises(SimulationError):
            event.succeed(2)

    def test_event_value_before_trigger_raises(self, env):
        event = env.event()
        with pytest.raises(SimulationError):
            _ = event.value

    def test_fail_requires_exception(self, env):
        event = env.event()
        with pytest.raises(SimulationError):
            event.fail("not an exception")

    def test_failed_event_raises_in_process(self, env):
        event = env.event()
        caught = []

        def waiter():
            try:
                yield event
            except RuntimeError as exc:
                caught.append(str(exc))

        def trigger():
            yield env.timeout(1.0)
            event.fail(RuntimeError("boom"))

        env.process(waiter())
        env.process(trigger())
        env.run()
        assert caught == ["boom"]

    def test_unhandled_failure_propagates(self, env):
        def failing():
            yield env.timeout(1.0)
            raise ValueError("unhandled")

        env.process(failing())
        with pytest.raises(ValueError, match="unhandled"):
            env.run()


class TestProcesses:
    def test_process_return_value(self, env):
        def child():
            yield env.timeout(1.0)
            return "done"

        results = []

        def parent():
            value = yield env.process(child())
            results.append(value)

        env.process(parent())
        env.run()
        assert results == ["done"]

    def test_process_is_alive_until_finished(self, env):
        def child():
            yield env.timeout(5.0)

        proc = env.process(child())
        assert proc.is_alive
        env.run()
        assert not proc.is_alive

    def test_non_generator_rejected(self, env):
        with pytest.raises(SimulationError):
            env.process(lambda: None)

    def test_yield_non_event_rejected_at_process_creation(self, env):
        """The first step runs inline, so a bad first yield surfaces at
        the env.process() call itself, not later inside run()."""
        def bad():
            yield 42

        with pytest.raises(SimulationError):
            env.process(bad())

    def test_yield_non_event_rejected_after_first_step(self, env):
        def bad():
            yield env.timeout(1.0)
            yield 42

        env.process(bad())
        with pytest.raises(SimulationError):
            env.run()

    def test_first_step_runs_inline(self, env):
        log = []

        def proc():
            log.append(env.now)
            yield env.timeout(1.0)
            log.append(env.now)

        env.process(proc())
        assert log == [0.0]  # first segment already ran
        env.run()
        assert log == [0.0, 1.0]

    def test_inline_start_restores_active_process(self, env):
        observed = []

        def child():
            yield env.timeout(1.0)

        def parent():
            env.process(child())
            observed.append(env.active_process)
            yield env.timeout(2.0)

        parent_proc = env.process(parent())
        env.run()
        assert observed == [parent_proc]

    def test_interrupt_reaches_process(self, env):
        caught = []

        def victim():
            try:
                yield env.timeout(100.0)
            except Interrupt as interrupt:
                caught.append(interrupt.cause)

        def attacker(target):
            yield env.timeout(1.0)
            target.interrupt("stop")

        victim_proc = env.process(victim())
        env.process(attacker(victim_proc))
        env.run()
        assert caught == ["stop"]

    def test_interrupt_finished_process_rejected(self, env):
        def quick():
            yield env.timeout(1.0)

        proc = env.process(quick())
        env.run()
        with pytest.raises(SimulationError):
            proc.interrupt()

    def test_nested_processes(self, env):
        trace = []

        def grandchild():
            yield env.timeout(1.0)
            trace.append("grandchild")
            return 3

        def child():
            value = yield env.process(grandchild())
            trace.append("child")
            return value * 2

        def parent():
            value = yield env.process(child())
            trace.append(("parent", value))

        env.process(parent())
        env.run()
        assert trace == ["grandchild", "child", ("parent", 6)]


class TestConditions:
    def test_any_of_triggers_on_first(self, env):
        results = []

        def proc():
            first = env.timeout(1.0, value="fast")
            second = env.timeout(5.0, value="slow")
            outcome = yield env.any_of([first, second])
            results.append((env.now, list(outcome.values())))

        env.process(proc())
        env.run()
        assert results[0][0] == 1.0
        assert "fast" in results[0][1]

    def test_all_of_waits_for_all(self, env):
        results = []

        def proc():
            events = [env.timeout(d) for d in (1.0, 2.0, 3.0)]
            yield env.all_of(events)
            results.append(env.now)

        env.process(proc())
        env.run()
        assert results == [3.0]

    def test_any_of_with_untriggered_event_and_timeout(self, env):
        """The pattern used by platform timeouts must not fire early."""
        results = []

        def proc():
            pending = env.event()
            deadline = env.timeout(2.0)
            outcome = yield env.any_of([pending, deadline])
            results.append((env.now, pending in outcome))

        env.process(proc())
        env.run()
        assert results == [(2.0, False)]

    def test_any_of_empty_triggers_immediately(self, env):
        results = []

        def proc():
            yield env.any_of([])
            results.append(env.now)

        env.process(proc())
        env.run()
        assert results == [0.0]

    def test_condition_classes_exported(self):
        assert AnyOf is not None and AllOf is not None and Timeout is not None
