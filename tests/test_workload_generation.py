"""Tests for the MMPP and the standard workload generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.generator import (
    WorkloadSpec,
    generate_workload,
    standard_workload,
    standard_workload_specs,
)
from repro.workload.mmpp import MMPP, MMPPState, PoissonProcess


class TestPoissonProcess:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            PoissonProcess(-1.0)

    def test_zero_rate_no_arrivals(self):
        process = PoissonProcess(0.0)
        assert process.sample(0, 100, np.random.default_rng(0)).size == 0

    def test_mean_count_near_expectation(self):
        process = PoissonProcess(10.0)
        rng = np.random.default_rng(1)
        counts = [process.sample(0, 100, rng).size for _ in range(30)]
        assert np.mean(counts) == pytest.approx(1000, rel=0.05)

    def test_arrivals_sorted_and_in_window(self):
        process = PoissonProcess(5.0)
        arrivals = process.sample(10, 20, np.random.default_rng(2))
        assert np.all(np.diff(arrivals) >= 0)
        assert np.all((arrivals >= 10) & (arrivals < 20))


class TestMMPP:
    def test_needs_two_states(self):
        with pytest.raises(ValueError):
            MMPP([MMPPState("only", 1.0, 10.0)])

    def test_state_validation(self):
        with pytest.raises(ValueError):
            MMPPState("bad", -1.0, 10.0)
        with pytest.raises(ValueError):
            MMPPState("bad", 1.0, 0.0)

    def test_timeline_covers_duration(self):
        mmpp = MMPP.two_state(5, 50, 30, 20)
        timeline = mmpp.sample_state_timeline(900, np.random.default_rng(0))
        assert timeline[0][0] == 0.0
        assert timeline[-1][1] == pytest.approx(900)
        for (s1, e1, _), (s2, _, _) in zip(timeline, timeline[1:]):
            assert e1 == pytest.approx(s2)

    def test_states_alternate(self):
        mmpp = MMPP.two_state(5, 50, 30, 20)
        timeline = mmpp.sample_state_timeline(500, np.random.default_rng(1))
        names = [state.name for _, _, state in timeline]
        assert all(a != b for a, b in zip(names, names[1:]))

    def test_expected_count_matches_rates(self):
        mmpp = MMPP.two_state(10, 0.0001, 100, 0.0001)
        state = mmpp.states[0]
        timeline = [(0.0, 100.0, state)]
        assert MMPP.expected_count(timeline) == pytest.approx(1000)

    def test_rate_scale_scales_arrivals(self):
        mmpp = MMPP.two_state(10, 40, 30, 30)
        rng = np.random.default_rng(3)
        timeline = mmpp.sample_state_timeline(300, rng)
        base = mmpp.sample_arrivals(300, np.random.default_rng(4),
                                    timeline=timeline).count
        doubled = mmpp.sample_arrivals(300, np.random.default_rng(4),
                                       timeline=timeline, rate_scale=2.0).count
        assert doubled == pytest.approx(2 * base, rel=0.15)


class TestWorkloadSpecs:
    def test_standard_specs_match_paper(self):
        specs = standard_workload_specs()
        assert specs["w-40"].high_rate == 40
        assert specs["w-120"].high_rate == 120
        assert specs["w-200"].high_rate == 200
        assert specs["w-40"].target_requests == 15_000
        assert specs["w-120"].target_requests == 51_600
        assert specs["w-200"].target_requests == 86_000

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(name="bad", high_rate=10, low_rate=20,
                         target_requests=100)
        with pytest.raises(ValueError):
            WorkloadSpec(name="bad", high_rate=10, low_rate=1,
                         target_requests=0)
        with pytest.raises(ValueError):
            WorkloadSpec(name="bad", high_rate=10, low_rate=1,
                         target_requests=10, burst_windows=((500, 100),))

    def test_compressed_keeps_rates(self):
        spec = standard_workload_specs()["w-120"]
        compressed = spec.compressed(0.25)
        assert compressed.high_rate == spec.high_rate
        assert compressed.duration_s == pytest.approx(spec.duration_s * 0.25)
        assert compressed.target_requests == pytest.approx(
            spec.target_requests * 0.25, rel=0.01)

    def test_scaled_reduces_rates(self):
        spec = standard_workload_specs()["w-120"]
        scaled = spec.scaled(0.5)
        assert scaled.high_rate == pytest.approx(60)
        assert scaled.duration_s == spec.duration_s


class TestGeneratedWorkloads:
    def test_request_count_near_target(self):
        workload = generate_workload(standard_workload_specs()["w-40"], seed=1)
        assert workload.count == pytest.approx(15_000, rel=0.05)

    def test_peak_rate_reaches_high_rate(self):
        workload = standard_workload("w-120", seed=2)
        # The 1-second peak should approach (and may exceed, by Poisson
        # noise) the nominal high rate, and clearly exceed the mean.
        assert workload.trace.peak_rate(1.0) > 70
        assert workload.trace.peak_rate(1.0) > 2 * workload.trace.mean_rate

    def test_clients_cover_all_requests(self):
        workload = standard_workload("w-40", seed=3, scale=0.2)
        assert sum(len(t) for t in workload.client_traces) == workload.count
        assert len(workload.client_traces) == 8

    def test_same_seed_reproducible(self):
        first = standard_workload("w-40", seed=5, scale=0.1)
        second = standard_workload("w-40", seed=5, scale=0.1)
        assert np.allclose(first.trace.times, second.trace.times)

    def test_different_seed_differs(self):
        first = standard_workload("w-40", seed=5, scale=0.1)
        second = standard_workload("w-40", seed=6, scale=0.1)
        assert first.count != second.count or not np.allclose(
            first.trace.times[:10], second.trace.times[:10])

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            standard_workload("w-999")

    def test_workload_subsample(self):
        workload = standard_workload("w-40", seed=1, scale=0.2)
        thinned = workload.subsampled(0.5, seed=1)
        assert thinned.count < workload.count
        assert len(thinned.client_traces) == 8

    @given(st.floats(min_value=0.05, max_value=1.0),
           st.integers(min_value=0, max_value=50))
    @settings(max_examples=20, deadline=None)
    def test_compressed_workloads_always_valid(self, scale, seed):
        workload = standard_workload("w-40", seed=seed, scale=scale)
        assert workload.count > 0
        assert np.all(np.diff(workload.trace.times) >= 0)
        assert workload.trace.duration <= 900 * scale + 1e-6
