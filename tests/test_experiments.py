"""Tests for the experiment modules and the CLI runner.

The experiments are exercised at a very small workload scale so that the
whole file stays fast; the full-scale reproduction is exercised by the
benchmark harness under ``benchmarks/``.
"""

import pytest

from repro.experiments import ExperimentContext, list_experiments, run_experiment
from repro.experiments.base import EXPERIMENTS, format_table
from repro.experiments.runner import build_parser, main, run_selected


@pytest.fixture(scope="module")
def tiny_context():
    """One shared, aggressively compressed context for all experiment tests."""
    return ExperimentContext(seed=3, scale=0.04, providers=("aws",))


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {"fig04", "fig05", "fig06", "fig07", "fig08", "fig09",
                    "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
                    "fig16", "fig17", "table1", "table2", "chaos",
                    "failover", "hybrid", "navigator"}
        assert set(list_experiments()) == expected

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_modules_importable_and_expose_run(self):
        import importlib
        for module_name in EXPERIMENTS.values():
            module = importlib.import_module(module_name)
            assert callable(module.run)
            assert module.EXPERIMENT_ID in EXPERIMENTS


class TestContext:
    def test_scale_validation(self):
        with pytest.raises(ValueError):
            ExperimentContext(scale=0.0)
        with pytest.raises(ValueError):
            ExperimentContext(scale=1.5)

    def test_workload_cache(self, tiny_context):
        first = tiny_context.workload("w-40")
        second = tiny_context.workload("w-40")
        assert first is second

    def test_run_cache(self, tiny_context):
        first = tiny_context.run_cell("aws", "mobilenet", "ort1.4",
                                      "serverless", "w-40")
        second = tiny_context.run_cell("aws", "mobilenet", "ort1.4",
                                       "serverless", "w-40")
        assert first is second


class TestSelectedExperiments:
    def test_fig04_reports_three_workloads(self, tiny_context):
        result = run_experiment("fig04", tiny_context)
        assert {row["workload"] for row in result.rows} == {"w-40", "w-120",
                                                            "w-200"}
        assert set(result.series) == {"w-40", "w-120", "w-200"}
        # Rates keep the paper's ordering even at a compressed scale.
        rates = {row["workload"]: row["mean_rate"] for row in result.rows}
        assert rates["w-40"] < rates["w-120"] < rates["w-200"]

    def test_fig10_breakdown_rows(self, tiny_context):
        result = run_experiment("fig10", tiny_context)
        assert len(result.rows) == 2  # aws x {mobilenet, albert}
        for row in result.rows:
            assert row["E2E (cs)"] > row["E2E (wu)"]
            assert row["import"] > 0

    def test_fig14_ort_cuts_cold_start(self, tiny_context):
        result = run_experiment("fig14", tiny_context)
        by_runtime = {row["runtime"]: row for row in result.rows}
        assert by_runtime["ort1.4"]["E2E (cs)"] < by_runtime["tf1.15"]["E2E (cs)"]

    def test_fig15_memory_rows(self, tiny_context):
        result = run_experiment("fig15", tiny_context)
        mobilenet_tf = [row for row in result.rows
                        if row["model"] == "mobilenet" and row["runtime"] == "tf1.15"]
        assert [row["memory_gb"] for row in mobilenet_tf] == [2.0, 4.0, 6.0, 8.0]

    def test_fig17_batching_increases_latency(self, tiny_context):
        result = run_experiment("fig17", tiny_context)
        vgg_tf = {row["batch_size"]: row for row in result.rows
                  if row["model"] == "vgg" and row["runtime"] == "tf1.15"}
        assert vgg_tf[8]["avg_latency_s"] > vgg_tf[1]["avg_latency_s"]

    def test_experiment_result_rendering(self, tiny_context):
        result = run_experiment("fig04", tiny_context)
        text = result.to_text()
        assert "fig04" in text and "w-200" in text

    def test_format_table_handles_missing_keys(self):
        text = format_table([{"a": 1}, {"b": 2.5}])
        assert "a" in text and "b" in text
        assert format_table([]) == "(no rows)"


class TestRunnerCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["fig04"])
        assert args.experiments == ["fig04"]
        assert args.scale == 0.2

    def test_list_mode(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig05" in out

    def test_run_selected_records_elapsed(self, tiny_context):
        results = run_selected(["fig04"], tiny_context)
        assert results[0].notes["elapsed_s"] >= 0

    def test_main_runs_and_writes_output(self, tmp_path, capsys):
        output = tmp_path / "report.txt"
        code = main(["fig04", "--scale", "0.04", "--providers", "aws",
                     "--output", str(output)])
        assert code == 0
        assert output.exists()
        assert "fig04" in output.read_text()

    def test_main_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["fig99"])
