"""Integration-level tests for the serverless platform simulation."""

import pytest

from repro.core.benchmark import ServingBenchmark
from repro.core.planner import Planner
from repro.serving.records import Stage
from repro.workload.generator import standard_workload


def run_serverless(bench, planner, workload, provider="aws",
                   model="mobilenet", runtime="tf1.15", **overrides):
    deployment = planner.plan(provider, model, runtime, "serverless",
                              **overrides)
    return bench.run(deployment, workload)


class TestServerlessBasics:
    def test_all_requests_succeed(self, bench, planner, tiny_w40):
        result = run_serverless(bench, planner, tiny_w40)
        assert result.total_requests == tiny_w40.count
        assert result.success_ratio == pytest.approx(1.0)

    def test_cold_starts_happen_and_are_flagged(self, bench, planner, tiny_w40):
        result = run_serverless(bench, planner, tiny_w40)
        cold = [o for o in result.successful if o.cold_start]
        assert result.usage.cold_starts > 0
        assert cold, "at least some requests must be cold-start requests"
        for outcome in cold[:20]:
            assert outcome.stage(Stage.IMPORT) > 0
            assert outcome.stage(Stage.LOAD) > 0
            assert outcome.latency > 2.0

    def test_warm_requests_are_fast(self, bench, planner, tiny_w40):
        result = run_serverless(bench, planner, tiny_w40)
        warm = [o for o in result.successful if not o.cold_start]
        assert warm
        mean_warm = sum(o.latency for o in warm) / len(warm)
        # Warm requests are far faster than the ~9 s cold start; a small
        # share of them still queues behind in-flight cold starts at this
        # tiny workload scale, so the bound is loose.
        assert mean_warm < 2.0

    def test_billing_is_positive_and_itemised(self, bench, planner, tiny_w40):
        result = run_serverless(bench, planner, tiny_w40)
        assert result.cost > 0
        assert result.usage.cost_breakdown["execution"] > 0
        assert result.usage.cost_breakdown["requests"] > 0
        assert result.usage.billed_seconds > 0

    def test_instance_gauge_recorded(self, bench, planner, tiny_w40):
        result = run_serverless(bench, planner, tiny_w40)
        assert result.usage.peak_instances >= 1
        assert len(result.usage.instance_count) > 0

    def test_vgg_skips_download_stage(self, bench, planner, tiny_w40):
        result = run_serverless(bench, planner, tiny_w40, model="vgg")
        cold = [o for o in result.successful if o.cold_start]
        assert cold
        assert all(o.stage(Stage.DOWNLOAD) == 0.0 for o in cold)

    def test_reproducible_with_same_seed(self, planner, tiny_w40):
        first = ServingBenchmark(seed=9).run(
            planner.plan("aws", "mobilenet", "tf1.15", "serverless"), tiny_w40)
        second = ServingBenchmark(seed=9).run(
            planner.plan("aws", "mobilenet", "tf1.15", "serverless"), tiny_w40)
        assert first.average_latency == pytest.approx(second.average_latency)
        assert first.cost == pytest.approx(second.cost)


class TestServerlessDesignSpace:
    def test_ort_faster_and_cheaper_than_tf(self, bench, planner, tiny_w40):
        tf = run_serverless(bench, planner, tiny_w40, runtime="tf1.15")
        ort = run_serverless(bench, planner, tiny_w40, runtime="ort1.4")
        assert ort.average_latency < tf.average_latency
        assert ort.cost < tf.cost

    def test_gcp_slower_and_pricier_than_aws(self, bench, planner, tiny_w40):
        aws_result = run_serverless(bench, planner, tiny_w40, provider="aws")
        gcp_result = run_serverless(bench, planner, tiny_w40, provider="gcp")
        assert gcp_result.average_latency > aws_result.average_latency
        assert gcp_result.usage.instances_created > aws_result.usage.instances_created

    def test_more_memory_speeds_up_vgg(self, bench, planner, tiny_w40):
        small = run_serverless(bench, planner, tiny_w40, model="vgg",
                               memory_gb=2.0)
        large = run_serverless(bench, planner, tiny_w40, model="vgg",
                               memory_gb=8.0)
        assert large.average_latency < small.average_latency

    def test_provisioned_concurrency_reserved_and_billed(self, bench,
                                                         planner, tiny_w40):
        plain = run_serverless(bench, planner, tiny_w40)
        provisioned = run_serverless(bench, planner, tiny_w40,
                                     provisioned_concurrency=4)
        assert provisioned.usage.cost_breakdown["provisioned"] > 0
        assert plain.usage.cost_breakdown["provisioned"] == 0

    def test_batching_raises_latency_and_keeps_every_request(self, bench,
                                                          planner, tiny_w40):
        plain = run_serverless(bench, planner, tiny_w40, runtime="ort1.4")
        batched = run_serverless(bench, planner, tiny_w40,
                                 runtime="ort1.4", batch_size=4)
        # Requests wait for their batch to fill, so latency goes up; every
        # original request still gets an outcome and succeeds.  (The cost
        # and cold-start reductions only appear at the paper's request
        # rates; they are asserted in tests/test_paper_claims.py and the
        # Figure 17 benchmark.)
        assert batched.average_latency > plain.average_latency
        assert batched.total_requests == plain.total_requests
        assert batched.success_ratio > 0.99

    def test_extra_download_slows_cold_start(self, bench, planner, tiny_w40):
        base = run_serverless(bench, planner, tiny_w40)
        heavy = run_serverless(bench, planner, tiny_w40,
                               extra_download_mb=300.0)
        base_cold = [o.latency for o in base.successful if o.cold_start]
        heavy_cold = [o.latency for o in heavy.successful if o.cold_start]
        assert (sum(heavy_cold) / len(heavy_cold)
                > sum(base_cold) / len(base_cold) + 1.0)

    def test_inferences_per_request_scale_latency(self, bench, planner,
                                                  tiny_w40):
        one = run_serverless(bench, planner, tiny_w40, model="vgg",
                             runtime="ort1.4")
        four = run_serverless(bench, planner, tiny_w40, model="vgg",
                              runtime="ort1.4", inferences_per_request=4)
        assert four.average_latency > 2.0 * one.average_latency
