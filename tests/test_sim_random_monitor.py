"""Unit tests for random streams and monitors."""

import numpy as np
import pytest

from repro.sim import CounterMonitor, GaugeMonitor, RandomStreams, TimeSeriesMonitor


class TestRandomStreams:
    def test_same_seed_same_draws(self):
        a = RandomStreams(42)
        b = RandomStreams(42)
        assert a.exponential("x", 1.0) == b.exponential("x", 1.0)
        assert a.uniform("y", 0, 1) == b.uniform("y", 0, 1)

    def test_different_streams_are_independent(self):
        streams = RandomStreams(42)
        # Consuming from one stream must not change another's next draw.
        fresh = RandomStreams(42)
        fresh.exponential("other", 1.0)
        assert (streams.exponential("main", 1.0)
                == fresh.exponential("main", 1.0))

    def test_lognormal_mean_is_calibrated(self):
        streams = RandomStreams(1)
        draws = [streams.lognormal_around("jitter", 2.0, 0.2)
                 for _ in range(4000)]
        assert np.mean(draws) == pytest.approx(2.0, rel=0.05)

    def test_lognormal_zero_cv_is_deterministic(self):
        streams = RandomStreams(1)
        assert streams.lognormal_around("x", 3.0, 0.0) == 3.0

    def test_validation(self):
        streams = RandomStreams(0)
        with pytest.raises(ValueError):
            streams.exponential("x", 0.0)
        with pytest.raises(ValueError):
            streams.uniform("x", 2.0, 1.0)
        with pytest.raises(ValueError):
            streams.lognormal_around("x", -1.0, 0.1)
        with pytest.raises(ValueError):
            streams.choice("x", 0)

    def test_choice_in_range(self):
        streams = RandomStreams(9)
        values = {streams.choice("pick", 5) for _ in range(200)}
        assert values <= {0, 1, 2, 3, 4}
        assert len(values) > 1

    def test_fork_changes_draws(self):
        base = RandomStreams(7)
        forked = base.fork(1)
        assert base.uniform("x", 0, 1) != forked.uniform("x", 0, 1)


class TestTimeSeriesMonitor:
    def test_record_and_lookup(self):
        series = TimeSeriesMonitor()
        series.record(0.0, 1.0)
        series.record(10.0, 5.0)
        assert series.value_at(-1.0) == 0.0
        assert series.value_at(0.0) == 1.0
        assert series.value_at(9.9) == 1.0
        assert series.value_at(10.0) == 5.0

    def test_out_of_order_rejected(self):
        series = TimeSeriesMonitor()
        series.record(5.0, 1.0)
        with pytest.raises(ValueError):
            series.record(4.0, 2.0)

    def test_resample(self):
        series = TimeSeriesMonitor()
        series.record(0.0, 1.0)
        series.record(2.0, 3.0)
        assert series.resample([0.0, 1.0, 2.0, 3.0]) == [1.0, 1.0, 3.0, 3.0]

    def test_max_and_len(self):
        series = TimeSeriesMonitor()
        assert series.max() == 0.0
        series.record(0.0, 2.0)
        series.record(1.0, 7.0)
        assert series.max() == 7.0
        assert len(series) == 2


class TestCounterAndGauge:
    def test_counter_increments(self):
        counter = CounterMonitor()
        counter.increment("requests")
        counter.increment("requests", 2.0)
        assert counter.get("requests") == 3.0
        assert counter.get("missing") == 0.0

    def test_counter_rejects_negative(self):
        counter = CounterMonitor()
        with pytest.raises(ValueError):
            counter.increment("x", -1.0)

    def test_gauge_tracks_history(self):
        gauge = GaugeMonitor("instances")
        gauge.set(0.0, 1.0)
        gauge.add(5.0, 2.0)
        assert gauge.value == 3.0
        assert gauge.history.as_pairs() == [(0.0, 1.0), (5.0, 3.0)]
