"""Tests for deployment specifications and request records."""

import pytest

from repro.cloud import aws
from repro.models import get_model
from repro.runtimes import get_runtime
from repro.serving import Deployment, PlatformKind, RequestOutcome, ServiceConfig
from repro.serving.records import Stage


class TestServiceConfig:
    def test_defaults_match_paper(self):
        config = ServiceConfig()
        assert config.platform == PlatformKind.SERVERLESS
        assert config.memory_gb == 2.0
        assert config.batch_size == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(platform="mainframe")
        with pytest.raises(ValueError):
            ServiceConfig(memory_gb=0)
        with pytest.raises(ValueError):
            ServiceConfig(provisioned_concurrency=-1)
        with pytest.raises(ValueError):
            ServiceConfig(batch_size=0)
        with pytest.raises(ValueError):
            ServiceConfig(extra_download_mb=-1)
        with pytest.raises(ValueError):
            ServiceConfig(samples_per_request=0)
        with pytest.raises(ValueError):
            ServiceConfig(initial_instances=0)

    def test_replace(self):
        config = ServiceConfig()
        bigger = config.replace(memory_gb=8.0)
        assert bigger.memory_gb == 8.0
        assert config.memory_gb == 2.0


class TestDeployment:
    def test_labels_and_instance_types(self):
        provider = aws()
        deployment = Deployment(provider=provider, model=get_model("mobilenet"),
                                runtime=get_runtime("tf1.15"),
                                config=ServiceConfig(platform=PlatformKind.CPU_SERVER))
        assert "aws-cpu_server/mobilenet/tf1.15" == deployment.label
        assert deployment.instance_type() == "m5.2xlarge"
        gpu = deployment.with_config(platform=PlatformKind.GPU_SERVER)
        assert gpu.instance_type() == "g4dn.2xlarge"

    def test_managed_requires_supported_runtime(self):
        provider = aws()
        with pytest.raises(ValueError):
            Deployment(provider=provider, model=get_model("mobilenet"),
                       runtime=get_runtime("ort1.4"),
                       config=ServiceConfig(platform=PlatformKind.MANAGED_ML))

    def test_serverless_has_no_instance_type(self):
        deployment = Deployment(provider=aws(), model=get_model("vgg"),
                                runtime=get_runtime("tf1.15"))
        assert deployment.instance_type() == ""

    def test_explicit_instance_type_wins(self):
        deployment = Deployment(
            provider=aws(), model=get_model("vgg"), runtime=get_runtime("tf1.15"),
            config=ServiceConfig(platform=PlatformKind.CPU_SERVER,
                                 instance_type="g4dn.2xlarge"))
        assert deployment.instance_type() == "g4dn.2xlarge"


class TestRequestOutcome:
    def test_latency_requires_completion(self):
        outcome = RequestOutcome(request_id=1, client_id=0, send_time=10.0)
        assert outcome.latency is None
        outcome.finish(12.5, success=True)
        assert outcome.latency == pytest.approx(2.5)
        assert outcome.success

    def test_finish_before_send_rejected(self):
        outcome = RequestOutcome(request_id=1, client_id=0, send_time=10.0)
        with pytest.raises(ValueError):
            outcome.finish(9.0, success=True)

    def test_stage_accumulation(self):
        outcome = RequestOutcome(request_id=1, client_id=0, send_time=0.0)
        outcome.add_stage(Stage.NETWORK, 0.1)
        outcome.add_stage(Stage.NETWORK, 0.2)
        assert outcome.stage(Stage.NETWORK) == pytest.approx(0.3)
        assert outcome.stage(Stage.PREDICT) == 0.0
        with pytest.raises(ValueError):
            outcome.add_stage(Stage.PREDICT, -0.1)

    def test_stage_vocabulary(self):
        assert set(Stage.COLD_ONLY) <= set(Stage.ORDER)
