"""Integration tests for the paper's headline claims.

These run small-but-rate-faithful copies of the paper's workloads (time
compression keeps the request rates, hence the queueing behaviour) and
assert the *qualitative* findings of the paper — who wins, and in which
direction the design-space knobs move the metrics.
"""

import pytest

from repro.core.benchmark import ServingBenchmark
from repro.core.planner import Planner
from repro.workload.generator import standard_workload


@pytest.fixture(scope="module")
def planner():
    return Planner()


@pytest.fixture(scope="module")
def bench():
    return ServingBenchmark(seed=13)


@pytest.fixture(scope="module")
def w40(scope="module"):
    return standard_workload("w-40", seed=13, scale=0.12)


@pytest.fixture(scope="module")
def w120():
    return standard_workload("w-120", seed=13, scale=0.12)


@pytest.fixture(scope="module")
def w200():
    return standard_workload("w-200", seed=13, scale=0.12)


def run(bench, planner, workload, provider, model, platform,
        runtime="tf1.15", **overrides):
    deployment = planner.plan(provider, model, runtime, platform, **overrides)
    return bench.run(deployment, workload)


class TestServerlessVsManagedMl:
    """Section 4.2: serverless beats managed ML services in most cases."""

    def test_aws_serverless_much_faster_than_managed(self, bench, planner, w40):
        serverless = run(bench, planner, w40, "aws", "mobilenet", "serverless")
        managed = run(bench, planner, w40, "aws", "mobilenet", "managed_ml")
        assert serverless.average_latency < managed.average_latency / 20

    def test_aws_serverless_cheaper_than_managed(self, bench, planner, w40):
        serverless = run(bench, planner, w40, "aws", "mobilenet", "serverless")
        managed = run(bench, planner, w40, "aws", "mobilenet", "managed_ml")
        assert serverless.cost < managed.cost

    def test_managed_success_ratio_collapses_for_large_models(self, bench,
                                                              planner, w40):
        albert = run(bench, planner, w40, "aws", "albert", "managed_ml")
        vgg = run(bench, planner, w40, "aws", "vgg", "managed_ml")
        assert albert.success_ratio < 0.7
        assert vgg.success_ratio < 0.5

    def test_serverless_success_ratio_stays_high(self, bench, planner, w120):
        for model in ("mobilenet", "albert", "vgg"):
            result = run(bench, planner, w120, "aws", model, "serverless")
            assert result.success_ratio > 0.98


class TestServerlessVsCpuServer:
    """Section 4.3: serverless is faster than CPU servers, which collapse
    under load."""

    def test_serverless_faster_than_cpu_server(self, bench, planner, w40):
        serverless = run(bench, planner, w40, "aws", "mobilenet", "serverless")
        cpu = run(bench, planner, w40, "aws", "mobilenet", "cpu_server")
        assert serverless.average_latency < cpu.average_latency / 2

    def test_cpu_server_degrades_with_workload(self, bench, planner,
                                               w40, w120):
        light = run(bench, planner, w40, "aws", "mobilenet", "cpu_server")
        heavy = run(bench, planner, w120, "aws", "mobilenet", "cpu_server")
        assert heavy.success_ratio < light.success_ratio
        assert heavy.success_ratio < 0.9
        assert heavy.average_latency > light.average_latency

    def test_cpu_server_degrades_with_model_size(self, bench, planner, w40):
        mobilenet = run(bench, planner, w40, "aws", "mobilenet", "cpu_server")
        vgg = run(bench, planner, w40, "aws", "vgg", "cpu_server")
        assert vgg.success_ratio < mobilenet.success_ratio

    def test_cpu_server_cost_flat_across_workloads(self, bench, planner,
                                                   w40, w200):
        light = run(bench, planner, w40, "aws", "mobilenet", "cpu_server")
        heavy = run(bench, planner, w200, "aws", "mobilenet", "cpu_server")
        # Per-hour billing: the cost gap stays small even though the
        # request volume grows by 5.7x.
        assert heavy.cost < 2.5 * light.cost


class TestServerlessVsGpuServer:
    """Section 4.4: GPUs win at low load; serverless wins under bursts."""

    def test_gpu_faster_at_low_load(self, bench, planner, w40):
        gpu = run(bench, planner, w40, "aws", "vgg", "gpu_server")
        serverless = run(bench, planner, w40, "aws", "vgg", "serverless")
        assert gpu.average_latency < serverless.average_latency

    def test_serverless_beats_gpu_under_heavy_load(self, bench, planner, w200):
        gpu = run(bench, planner, w200, "aws", "mobilenet", "gpu_server")
        serverless = run(bench, planner, w200, "aws", "mobilenet", "serverless")
        assert serverless.average_latency < gpu.average_latency / 10
        assert serverless.success_ratio >= gpu.success_ratio

    def test_serverless_latency_insensitive_to_workload(self, bench,
                                                        planner, w40, w200):
        light = run(bench, planner, w40, "aws", "mobilenet", "serverless")
        heavy = run(bench, planner, w200, "aws", "mobilenet", "serverless")
        assert heavy.average_latency < 3 * light.average_latency


class TestDesignSpaceFindings:
    """Section 5: platform gap, runtime choice, memory, batching."""

    def test_aws_serverless_beats_gcp_serverless(self, bench, planner, w120):
        aws_result = run(bench, planner, w120, "aws", "mobilenet", "serverless")
        gcp_result = run(bench, planner, w120, "gcp", "mobilenet", "serverless")
        assert aws_result.average_latency < gcp_result.average_latency
        assert aws_result.cost < gcp_result.cost

    def test_gcp_overprovisions_instances(self, bench, planner, w40):
        aws_result = run(bench, planner, w40, "aws", "vgg", "serverless")
        gcp_result = run(bench, planner, w40, "gcp", "vgg", "serverless")
        assert (gcp_result.usage.instances_created
                > 1.5 * aws_result.usage.instances_created)

    def test_ort_improves_latency_and_cost(self, bench, planner, w120):
        tf = run(bench, planner, w120, "gcp", "mobilenet", "serverless",
                 runtime="tf1.15")
        ort = run(bench, planner, w120, "gcp", "mobilenet", "serverless",
                  runtime="ort1.4")
        assert tf.average_latency / ort.average_latency > 1.3
        assert tf.cost / ort.cost > 1.3

    def test_ort_gain_larger_for_mobilenet_than_vgg(self, bench, planner,
                                                    w120):
        gains = {}
        for model in ("mobilenet", "vgg"):
            tf = run(bench, planner, w120, "aws", model, "serverless",
                     runtime="tf1.15")
            ort = run(bench, planner, w120, "aws", model, "serverless",
                      runtime="ort1.4")
            gains[model] = tf.average_latency / ort.average_latency
        assert gains["mobilenet"] > gains["vgg"]

    def test_memory_reduces_vgg_latency_more_than_mobilenet(self, bench,
                                                            planner, w120):
        reductions = {}
        for model in ("mobilenet", "vgg"):
            small = run(bench, planner, w120, "aws", model, "serverless",
                        memory_gb=2.0)
            large = run(bench, planner, w120, "aws", model, "serverless",
                        memory_gb=8.0)
            reductions[model] = small.average_latency - large.average_latency
        assert reductions["vgg"] > reductions["mobilenet"]

    def test_batching_cuts_cost_but_raises_latency(self, bench, planner,
                                                   w120):
        plain = run(bench, planner, w120, "aws", "mobilenet", "serverless")
        batched = run(bench, planner, w120, "aws", "mobilenet", "serverless",
                      batch_size=8)
        assert batched.cost < plain.cost
        assert batched.average_latency > 2 * plain.average_latency
