"""The trace-scale streaming plane: chunk ring, reductions, calendar, shm.

Four guarantees of the streaming engine are pinned here:

* **Chunk-ring equality** — the chunked recorder, at any chunk size,
  retains columns bit-identical to the preallocated ``OutcomeRecorder``
  (same ``column_hash``), and its sealed chunks survive the ``packed()``
  wire format losslessly.
* **Streaming reductions** — a cell run through the streaming path
  (``OutcomeSummary`` folds, no full table) reproduces every standard
  metric: counts, ratios, and timelines exactly; sketch quantiles within
  the sketch's documented resolution.
* **Calendar-queue bit-identity** — forcing the heap-to-bucket migration
  at tiny thresholds changes neither the outcome columns nor the event
  count of a cell.
* **Shared-memory transport** — ``pack_arrays``/``unpack_arrays`` round
  payloads through a shm segment bit-identically, and a worker pool
  forced onto the segment path matches serial hashes.

Plus the streamed workload generator (block-by-block arrivals equal to
the materialised trace) and the recorder's exact-capacity contract.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.sim.engine as engine
from repro.core.benchmark import ServingBenchmark
from repro.core.results import RunResult
from repro.core.shm import ShmPayload, pack_arrays, unpack_arrays
from repro.serving.outcome_table import OutcomeRecorder, OutcomeTable
from repro.serving.streaming import (
    ChunkedOutcomeRecorder,
    LatencySketch,
    OutcomeSummary,
)
from repro.workload.generator import (
    WorkloadSpec,
    generate_workload,
    standard_workload,
    workload_spec,
)
from repro.workload.splitter import merge_traces
from repro.workload.streaming import PIECE_ARRIVALS, StreamedWorkload

SEED = 5


@pytest.fixture(scope="module")
def reference_result(tiny_w40):
    """One preallocated-path cell shared by the equality tests."""
    from repro.core.planner import Planner
    deployment = Planner().plan("aws", "mobilenet", "tf1.15", "serverless")
    return ServingBenchmark(seed=SEED).run(deployment, tiny_w40), deployment


def _replay(outcomes, chunk_rows: int) -> ChunkedOutcomeRecorder:
    """Feed materialised outcomes through a retained chunk ring."""
    recorder = ChunkedOutcomeRecorder(chunk_rows=chunk_rows,
                                      keep_chunks=True)
    for outcome in outcomes:
        recorder.register(outcome)
    for outcome in outcomes:
        recorder.commit(outcome)
    return recorder


class TestChunkRingEquality:
    @pytest.mark.parametrize("chunk_rows", [7, 256, 4096, 1_000_000])
    def test_any_chunk_size_matches_preallocated_hash(self,
                                                      reference_result,
                                                      chunk_rows):
        result, _deployment = reference_result
        outcomes = result.table.to_outcomes()
        recorder = _replay(outcomes, chunk_rows)
        assert recorder.table().column_hash() == result.table.column_hash()

    def test_sealed_chunks_survive_packed_round_trip(self,
                                                     reference_result):
        result, _deployment = reference_result
        recorder = _replay(result.table.to_outcomes(), chunk_rows=256)
        chunks = list(recorder.sealed_chunks())
        assert sum(chunk.count for chunk in chunks) == result.table.count
        for chunk in chunks:
            rebuilt = OutcomeTable.from_packed(chunk.packed())
            assert rebuilt.column_hash() == chunk.column_hash()

    def test_commit_after_fold_is_a_hard_error(self):
        from repro.serving.records import RequestOutcome
        recorder = ChunkedOutcomeRecorder(chunk_rows=4, keep_chunks=False,
                                          seal_lag_s=0.0)
        outcomes = []
        for index in range(8):
            outcome = RequestOutcome(request_id=index, client_id=0,
                                     send_time=float(index))
            recorder.register(outcome)
            outcomes.append(outcome)
        for outcome in outcomes:
            outcome.completion_time = outcome.send_time + 100.0
            outcome.success = True
            recorder.commit(outcome)
        # Both chunks full+committed and aged past the (zero) lag: folded.
        assert recorder.summary.chunks_folded >= 1
        late = outcomes[0]
        with pytest.raises(RuntimeError, match="folded"):
            recorder.commit(late)


class TestStreamingReductions:
    @pytest.fixture(scope="class")
    def pair(self, tiny_w40):
        """The same cell through the preallocated and streaming paths."""
        from repro.core.planner import Planner
        deployment = Planner().plan("aws", "mobilenet", "tf1.15",
                                    "serverless")
        full = ServingBenchmark(seed=SEED).run(deployment, tiny_w40)
        streamed = ServingBenchmark(seed=SEED, streaming_threshold=0,
                                    chunk_rows=128).run(deployment,
                                                        tiny_w40)
        return full, streamed

    def test_streaming_flag_and_summary_type(self, pair):
        full, streamed = pair
        assert not full.streaming
        assert streamed.streaming
        assert isinstance(streamed.table, OutcomeSummary)
        with pytest.raises(RuntimeError):
            streamed.outcomes  # noqa: B018 - the raise is the assertion

    def test_exact_reductions_match(self, pair):
        full, streamed = pair
        summary = streamed.table
        table = full.table
        assert summary.count == table.count
        assert streamed.success_ratio == full.success_ratio
        assert streamed.cold_start_ratio == full.cold_start_ratio
        assert summary.attempts_mean() == table.attempts_mean()
        assert summary.degraded_ratio() == table.degraded_ratio()

    def test_latency_within_sketch_resolution(self, pair):
        full, streamed = pair
        assert streamed.average_latency == pytest.approx(
            full.average_latency, rel=1e-9)
        sketch_stats = streamed.latency_stats()
        exact_stats = full.latency_stats()
        for name in ("p50", "p99"):
            assert getattr(sketch_stats, name) == pytest.approx(
                getattr(exact_stats, name), rel=0.02)
        assert abs(streamed.table.slo_attainment(1.0)
                   - full.table.slo_attainment(1.0)) <= 0.01

    def test_timeline_and_availability_exact(self, pair):
        full, streamed = pair
        edges, requests, successes = streamed.table.success_timeline(10.0)
        ref_edges, ref_requests, ref_successes = (
            full.table.success_timeline(10.0))
        # The streaming timeline spans the folded range, which may pad
        # past the reference's last bin; the shared prefix is exact.
        n = len(ref_requests)
        assert np.array_equal(edges[:n + 1], ref_edges[:n + 1])
        assert np.array_equal(requests[:n], ref_requests[:n])
        assert np.array_equal(successes[:n], ref_successes[:n])
        assert int(requests.sum()) == int(ref_requests.sum())
        assert int(successes.sum()) == int(ref_successes.sum())

    def test_non_integer_multiple_bin_rejected(self, pair):
        _full, streamed = pair
        with pytest.raises(ValueError):
            streamed.table.success_timeline(1.5)

    def test_mid_run_sealing_bounds_residency(self):
        from repro.serving.records import RequestOutcome
        recorder = ChunkedOutcomeRecorder(chunk_rows=128, keep_chunks=False,
                                          seal_lag_s=20.0)
        rows = 128 * 36
        for index in range(rows):
            send = index * 0.5  # one chunk spans 64 s >> the 20 s lag
            outcome = RequestOutcome(request_id=index, client_id=0,
                                     send_time=send)
            recorder.register(outcome)
            outcome.completion_time = send + 0.05
            outcome.success = True
            recorder.commit(outcome)
        summary = recorder.finalize(rows * 0.5 + 1.0)
        assert summary.count == rows
        assert summary.chunks_folded == 36
        # Chunks recycled mid-run: residency stayed far under the total.
        assert recorder.peak_resident_chunks <= 4

    def test_transport_round_trip_preserves_digest(self, pair, tiny_w40):
        _full, streamed = pair
        transport = streamed.to_transport()
        rebuilt = RunResult.from_transport(transport, streamed.deployment)
        assert rebuilt.streaming
        assert rebuilt.table.digest() == streamed.table.digest()
        assert rebuilt.success_ratio == streamed.success_ratio


class TestLatencySketch:
    def test_quantiles_within_bin_resolution(self):
        rng = np.random.default_rng(3)
        values = rng.lognormal(mean=-2.0, sigma=0.8, size=20_000)
        sketch = LatencySketch()
        sketch.add(values)
        for q in (50.0, 90.0, 99.0):
            assert sketch.quantile(q) == pytest.approx(
                float(np.percentile(values, q)), rel=0.01)
        assert sketch.mean == pytest.approx(float(values.mean()), rel=1e-9)
        assert sketch.std == pytest.approx(float(values.std()), rel=1e-6)

    def test_extremes_clamped_to_observed_range(self):
        sketch = LatencySketch()
        sketch.add(np.array([0.5]))
        assert sketch.quantile(0.0) == 0.5
        assert sketch.quantile(100.0) == 0.5


class TestBucketCalendar:
    def test_pop_order_matches_heap(self):
        import heapq
        rng = np.random.default_rng(11)
        times = rng.uniform(0.0, 100.0, 5_000)
        entries = [(float(t), 1, seq, None, True, None)
                   for seq, t in enumerate(times)]
        heap = list(entries)
        heapq.heapify(heap)
        calendar = engine.BucketCalendar(width=0.64, start_key=0)
        for entry in entries:
            calendar.push(entry)
        order = [calendar.pop() for _ in range(len(entries))]
        assert order == [heapq.heappop(heap) for _ in range(len(entries))]
        assert calendar.size == 0

    def test_forced_migration_is_bit_identical(self, monkeypatch,
                                               reference_result, tiny_w40):
        result, deployment = reference_result
        for threshold in (16, 128):
            monkeypatch.setattr(engine, "_BUCKET_THRESHOLD", threshold)
            bucketed = ServingBenchmark(seed=SEED).run(deployment, tiny_w40)
            assert (bucketed.table.column_hash()
                    == result.table.column_hash())
            assert (bucketed.metadata["events_processed"]
                    == result.metadata["events_processed"])


class TestShmTransport:
    def test_round_trip_is_bit_identical(self, reference_result):
        result, deployment = reference_result
        transport = result.to_transport()
        packed = pack_arrays(transport, min_bytes=0)
        assert isinstance(packed, ShmPayload)
        rebuilt = RunResult.from_transport(unpack_arrays(packed), deployment)
        assert rebuilt.table.column_hash() == result.table.column_hash()

    def test_small_payloads_stay_plain(self, reference_result):
        result, _deployment = reference_result
        transport = result.to_transport()
        assert pack_arrays(transport) is transport  # under SHM_MIN_BYTES

    def test_disabled_by_environment(self, monkeypatch, reference_result):
        monkeypatch.setenv("REPRO_SHM", "0")
        result, _deployment = reference_result
        transport = result.to_transport()
        assert pack_arrays(transport, min_bytes=0) is transport

    def test_worker_pool_on_segment_path_matches_serial(self, monkeypatch,
                                                        tiny_w40):
        from repro.core.planner import Planner
        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "0")
        planner = Planner()
        deployments = [planner.plan("aws", "mobilenet", "tf1.15", platform)
                       for platform in ("serverless", "cpu_server")]
        bench = ServingBenchmark(seed=SEED)
        serial = bench.run_many(deployments, tiny_w40)
        pooled = bench.run_many(deployments, tiny_w40, workers=2)
        for left, right in zip(serial, pooled):
            assert left.table.column_hash() == right.table.column_hash()


class TestStreamedWorkload:
    def test_small_spec_matches_materialised_exactly(self):
        spec = workload_spec("w-40").compressed(0.3)
        materialised = generate_workload(spec, seed=SEED)
        session = StreamedWorkload(spec=spec, seed=SEED).open()
        for reference, streamed in zip(materialised.client_traces,
                                       session.client_traces):
            assert len(reference) == len(streamed)
            assert list(reference.times) == list(streamed)

    def test_oversized_intervals_keep_exact_counts(self):
        spec = WorkloadSpec(name="big", high_rate=400.0, low_rate=50.0,
                            target_requests=3 * PIECE_ARRIVALS,
                            duration_s=900.0)
        session = StreamedWorkload(spec=spec, seed=SEED).open()
        counts = [sum(1 for _ in trace) for trace in session.client_traces]
        assert sum(counts) == spec.target_requests

    def test_registered_scale_family(self):
        for name, total in (("w-1m", 1_000_000), ("w-10m", 10_000_000)):
            spec = workload_spec(name)
            assert spec.streamed and spec.family == "scale"
            assert spec.target_requests == total
            workload = standard_workload(name, seed=SEED)
            assert isinstance(workload, StreamedWorkload)
            assert workload.count == total

    def test_listing_groups_scale_family(self, capsys):
        from repro.experiments.runner import _print_listing
        _print_listing()
        output = capsys.readouterr().out
        assert "[scale]" in output
        scale_block = output.split("[scale]", 1)[1]
        assert "w-1m" in scale_block and "w-10m" in scale_block

    def test_streamed_cell_runs_end_to_end(self):
        from repro.core.planner import Planner
        deployment = Planner().plan("aws", "mobilenet", "tf1.15",
                                    "serverless")
        workload = standard_workload("w-1m", seed=SEED, scale=0.01)
        result = ServingBenchmark(seed=SEED).run(deployment, workload,
                                                 workload_scale=0.01)
        assert result.streaming
        assert result.total_requests == 10_000
        assert result.success_ratio > 0.5


class TestExactCapacity:
    def test_capacity_is_not_padded(self):
        for capacity in (0, 1, 7, 100):
            recorder = OutcomeRecorder(capacity)
            assert recorder._capacity == capacity

    def test_grow_from_zero(self):
        from repro.serving.records import RequestOutcome
        recorder = OutcomeRecorder(0)
        for index in range(40):
            outcome = RequestOutcome(request_id=index, client_id=0,
                                     send_time=float(index))
            recorder.register(outcome)
            outcome.completion_time = float(index) + 0.5
            outcome.success = True
            recorder.commit(outcome)
        table = recorder.table()
        assert table.count == 40
        assert bool(table.success.all())
