"""Unit tests for the pricing catalog and billing calculators."""

import pytest

from repro.cloud.pricing import (
    ManagedMlPricing,
    ServerlessBill,
    ServerlessPricing,
    VmPricing,
    aws_pricing,
    gcp_pricing,
)


class TestServerlessPricing:
    def test_aws_gb_second_rate(self):
        pricing = aws_pricing().serverless
        # 1M GB-seconds at the published rate.
        assert pricing.execution_cost(1.0, 1_000_000, 0) == pytest.approx(16.6667, rel=1e-3)

    def test_request_fee(self):
        pricing = aws_pricing().serverless
        assert pricing.execution_cost(1.0, 0.0, 1_000_000) == pytest.approx(0.20)

    def test_gcp_charges_ghz_seconds(self):
        pricing = gcp_pricing().serverless
        # A 2 GB GCP function costs per GB-second plus per GHz-second.
        per_second = pricing.execution_cost(2.0, 1.0, 0)
        expected = 2.0 * 2.5e-6 + 2.0 * 1.2 * 1.0e-5
        assert per_second == pytest.approx(expected)

    def test_memory_validation(self):
        pricing = aws_pricing().serverless
        with pytest.raises(ValueError):
            pricing.execution_cost(0.0, 1.0, 1)

    def test_negative_inputs_rejected(self):
        pricing = aws_pricing().serverless
        with pytest.raises(ValueError):
            pricing.execution_cost(1.0, -1.0, 0)
        with pytest.raises(ValueError):
            pricing.provisioned_cost(1.0, -1, 10)

    def test_provisioned_rates(self):
        pricing = aws_pricing().serverless
        reservation = pricing.provisioned_cost(2.0, 4, 3600)
        assert reservation == pytest.approx(4 * 3600 * 2.0 * 4.1667e-6)
        provisioned_exec = pricing.execution_cost(2.0, 100.0, 0, provisioned=True)
        on_demand_exec = pricing.execution_cost(2.0, 100.0, 0)
        assert provisioned_exec < on_demand_exec


class TestServerAndManagedPricing:
    def test_vm_hourly(self):
        pricing = VmPricing(per_instance_hour={"m5.2xlarge": 0.384})
        assert pricing.cost("m5.2xlarge", 3600) == pytest.approx(0.384)
        assert pricing.cost("m5.2xlarge", 1800) == pytest.approx(0.192)

    def test_vm_unknown_type(self):
        pricing = VmPricing(per_instance_hour={})
        with pytest.raises(KeyError):
            pricing.cost("nope", 10)

    def test_managed_hourly(self):
        pricing = ManagedMlPricing(per_instance_hour={"ml.m4.2xlarge": 0.56})
        assert pricing.cost("ml.m4.2xlarge", 7200) == pytest.approx(1.12)

    def test_managed_negative_rejected(self):
        pricing = ManagedMlPricing(per_instance_hour={"x": 1.0})
        with pytest.raises(ValueError):
            pricing.cost("x", -5)


class TestServerlessBill:
    def test_accumulates_invocations(self):
        bill = ServerlessBill(memory_gb=2.0, pricing=aws_pricing().serverless)
        bill.add_invocation(0.1)
        bill.add_invocation(0.2)
        assert bill.requests == 2
        assert bill.billed_seconds == pytest.approx(0.3)
        assert bill.total() > 0

    def test_total_grows_with_invocations(self):
        bill = ServerlessBill(memory_gb=2.0, pricing=aws_pricing().serverless)
        bill.add_invocation(0.1)
        small = bill.total()
        for _ in range(100):
            bill.add_invocation(0.1)
        assert bill.total() > small

    def test_provisioned_components(self):
        bill = ServerlessBill(memory_gb=2.0, pricing=aws_pricing().serverless)
        bill.add_invocation(0.1, provisioned=True)
        bill.add_provisioned_reservation(instances=2, seconds=600)
        assert bill.provisioned_requests == 1
        assert bill.provisioned_instance_seconds == 1200
        assert bill.total() > 0

    def test_negative_duration_rejected(self):
        bill = ServerlessBill(memory_gb=2.0, pricing=aws_pricing().serverless)
        with pytest.raises(ValueError):
            bill.add_invocation(-0.1)


class TestCatalogs:
    def test_aws_catalog_instances(self):
        catalog = aws_pricing()
        assert catalog.provider_name == "aws"
        assert "ml.m4.2xlarge" in catalog.managed_ml.per_instance_hour
        assert "g4dn.2xlarge" in catalog.vm.per_instance_hour

    def test_gcp_catalog_instances(self):
        catalog = gcp_pricing()
        assert catalog.provider_name == "gcp"
        assert "n1-standard-8" in catalog.managed_ml.per_instance_hour
        assert "n1-standard-8-t4" in catalog.vm.per_instance_hour

    def test_gpu_costs_more_than_cpu(self):
        for catalog in (aws_pricing(), gcp_pricing()):
            rates = catalog.vm.per_instance_hour
            gpu = max(rates.values())
            cpu = min(rates.values())
            assert gpu > cpu
