"""The docs subsystem stays healthy under tier-1.

``scripts/check.sh`` runs the docstring and docs gates explicitly, but
these are cheap enough to assert from the test suite too — so a PR that
only runs pytest still cannot land an undocumented public name, a stale
generated API reference, or a broken internal docs link.
"""

import os
import subprocess
import sys

import pytest

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _run(script, *args):
    return subprocess.run(
        [sys.executable, os.path.join(ROOT, "scripts", script), *args],
        cwd=ROOT, capture_output=True, text=True)


class TestDocsGates:
    def test_public_api_surface_is_fully_documented(self):
        completed = _run("check_docstrings.py")
        assert completed.returncode == 0, completed.stdout
        assert "100.0%" in completed.stdout

    def test_docs_tree_validates_and_reference_is_current(self):
        completed = _run("build_docs.py")
        assert completed.returncode == 0, \
            completed.stdout + completed.stderr

    def test_generated_reference_covers_every_export(self):
        reference = os.path.join(ROOT, "docs", "reference", "api.md")
        with open(reference, "r", encoding="utf-8") as handle:
            body = handle.read()
        sys.path.insert(0, os.path.join(ROOT, "src"))
        try:
            import repro.api as api
        finally:
            sys.path.pop(0)
        for export in api.__all__:
            assert f"## `{export}`" in body, export

    @pytest.mark.parametrize("page", ["index.md", "tutorial.md",
                                      "replication.md"])
    def test_guide_pages_exist_and_are_nontrivial(self, page):
        path = os.path.join(ROOT, "docs", page)
        with open(path, "r", encoding="utf-8") as handle:
            body = handle.read()
        assert len(body) > 1000, page
        assert body.startswith("#"), page
