"""Golden-hash determinism tests for the columnar outcome pipeline.

The columnar rework leans on two exact-equivalence guarantees:

* block-buffered random draws serve the *same per-stream sequence* as
  scalar draws, at any block size (``RandomStreams`` pre-draws standard
  variates and scales them with the exact operations numpy applies
  internally);
* parallel cells are bit-identical to serial cells (every cell reseeds
  its own streams, and the packed transport encoding is lossless).

Both are asserted here as SHA-256 hashes over every outcome column of a
fixed-seed w-40 cell — if any draw, any completion time, or any stage
attribution shifts by one ULP, the hashes diverge.
"""

import pickle

import pytest

from repro.core.benchmark import ServingBenchmark
from repro.core.planner import Planner
from repro.serving.outcome_table import OutcomeTable
from repro.sim import RandomStreams
from repro.workload.generator import standard_workload

SEED = 5


@pytest.fixture(scope="module")
def w40_cell():
    return (Planner().plan("aws", "mobilenet", "tf1.15", "serverless"),
            standard_workload("w-40", seed=SEED, scale=0.05))


def _run_hash(deployment, workload, block_size):
    bench = ServingBenchmark(seed=SEED, rng_block_size=block_size)
    return bench.run(deployment, workload).table.column_hash()


class TestBlockSizeInvariance:
    def test_buffered_draws_match_unbuffered_run(self, w40_cell):
        """Identical outcome columns before/after block-buffered draws."""
        deployment, workload = w40_cell
        unbuffered = _run_hash(deployment, workload, block_size=1)
        for block_size in (7, 1024):
            assert _run_hash(deployment, workload, block_size) == unbuffered

    def test_stream_sequences_identical_at_any_block_size(self):
        for block_size in (3, 256):
            reference = RandomStreams(SEED, block_size=1)
            streams = RandomStreams(SEED, block_size=block_size)
            for _ in range(600):
                assert (streams.lognormal_around("jitter", 0.05, 0.08)
                        == reference.lognormal_around("jitter", 0.05, 0.08))
                assert (streams.exponential("dwell", 2.0)
                        == reference.exponential("dwell", 2.0))
                assert (streams.uniform("pull", 0.0, 1.0)
                        == reference.uniform("pull", 0.0, 1.0))
                assert (streams.choice("pick", 200)
                        == reference.choice("pick", 200))

    def test_lognormal_sum_matches_repeated_draws(self):
        summed = RandomStreams(SEED)
        repeated = RandomStreams(SEED)
        for count in (1, 2, 5):
            expected = sum(repeated.lognormal_around("x", 0.1, 0.2)
                           for _ in range(count))
            assert summed.lognormal_sum("x", 0.1, 0.2, count) == expected


class TestSerialParallelEquality:
    def test_worker_pool_produces_identical_columns(self, w40_cell):
        """Fixed-seed serial and workers=4 runs: bit-identical columns."""
        _deployment, workload = w40_cell
        planner = Planner()
        deployments = [planner.plan("aws", "mobilenet", "tf1.15", platform)
                       for platform in ("serverless", "cpu_server",
                                        "managed_ml", "gpu_server")]
        bench = ServingBenchmark(seed=SEED)
        serial = bench.run_many(deployments, workload)
        parallel = bench.run_many(deployments, workload, workers=4)
        for left, right in zip(serial, parallel):
            assert left.table.column_hash() == right.table.column_hash()
            assert left.cost == right.cost
            assert left.duration_s == right.duration_s
            assert left.usage.cold_starts == right.usage.cold_starts


class TestSeedAxisDeterminism:
    """The replication layer's exact-equivalence guarantees.

    A replicated sweep pins one seed per cell (``ScenarioSpec.seed``)
    and routes it through the run cache and the worker pool; these tests
    assert, via the same column hashes as above, that (a) pinning the
    runner's own seed changes nothing — replicate 0 of a K-replicate
    sweep is bit-identical to the unreplicated cell — and (b) fanning
    replicate cells over workers is bit-identical to running them
    serially.
    """

    def test_pinned_seed_matches_benchmark_seed_run(self, w40_cell):
        """seed=SEED override == the plain run at benchmark seed SEED."""
        deployment, workload = w40_cell
        bench = ServingBenchmark(seed=SEED)
        plain = bench.run(deployment, workload)
        pinned = bench.run(deployment, workload, seed=SEED)
        assert pinned.table.column_hash() == plain.table.column_hash()
        assert pinned.cost == plain.cost

    def test_replicate_zero_is_bit_identical_to_unreplicated_cell(self):
        """Sweep(seeds=(context seed,)) reproduces the plain study cell."""
        from repro.api import ScenarioSpec, Study, Sweep, run_study

        base = ScenarioSpec(name="det", provider="aws", model="mobilenet")
        plain = run_study(Study(name="plain", sweeps=Sweep(
            name="plain", base=base)), seed=SEED, scale=0.05)
        single = run_study(Study(name="single", sweeps=Sweep(
            name="single", base=base, seeds=(SEED,))), seed=SEED, scale=0.05)
        replicated = run_study(Study(name="rep", sweeps=Sweep(
            name="rep", base=base, replicates=3)), seed=SEED, scale=0.05)
        reference = plain.row(0)
        for frame in (single, replicated.where(replicate=0)):
            row = frame.row(0)
            assert row["seed"] == SEED
            for metric in ("requests", "success_ratio", "avg_latency_s",
                           "p99_latency_s", "cost_usd", "cold_starts",
                           "duration_s"):
                assert row[metric] == reference[metric], metric

    def test_replicated_worker_fanout_matches_serial(self):
        """workers=4 replicate cells: same golden hashes as serial."""
        from repro.core.scenario import ScenarioSpec
        from repro.experiments.base import ExperimentContext

        spec = ScenarioSpec(name="det", provider="aws", model="mobilenet")
        specs = [spec.with_seed(SEED + r, name=f"det/r{r}")
                 for r in range(4)]

        def run_all(workers):
            context = ExperimentContext(seed=SEED, scale=0.05,
                                        workers=workers)
            context.prefetch_specs(specs)
            return [context.run_scenario(s) for s in specs]

        serial = run_all(workers=0)
        parallel = run_all(workers=4)
        hashes = set()
        for left, right in zip(serial, parallel):
            assert left.table.column_hash() == right.table.column_hash()
            assert left.cost == right.cost
            hashes.add(left.table.column_hash())
        # The seeds genuinely vary the runs: all four hashes distinct.
        assert len(hashes) == len(specs)

    def test_seed_travels_in_cell_key(self):
        from repro.core.scenario import ScenarioSpec

        spec = ScenarioSpec(name="det", provider="aws", model="mobilenet")
        assert "seed=" not in spec.cell_key
        pinned = spec.with_seed(11)
        assert pinned.cell_key == spec.cell_key + "/seed=11"
        assert pinned.with_seed(None).cell_key == spec.cell_key
        assert pinned.as_row()["seed"] == 11

    def test_fidelity_travels_in_cell_key(self):
        from repro.core.scenario import ScenarioSpec

        spec = ScenarioSpec(name="det", provider="aws", model="mobilenet")
        assert "fidelity=" not in spec.cell_key
        short = spec.with_seed(11).with_fidelity(0.25)
        assert short.cell_key == spec.cell_key + "/seed=11/fidelity=0.25"
        assert short.as_row()["fidelity"] == 0.25
        # Full length normalises to None, so full-fidelity cell keys are
        # unchanged from before the knob existed.
        assert spec.with_fidelity(1.0).cell_key == spec.cell_key
        assert spec.with_fidelity(None).cell_key == spec.cell_key
        with pytest.raises(ValueError, match="fidelity"):
            spec.with_fidelity(0.0)
        with pytest.raises(ValueError, match="fidelity"):
            spec.with_fidelity(1.5)


class TestFidelityDeterminism:
    """Rung-0 short-horizon cells are ordinary cells, bit for bit.

    The halving search's cache-reuse story rests on this: a spec pinned
    to ``fidelity=f`` must produce byte-identical outcome columns to the
    same spec run through :func:`repro.api.run` with the scale folded by
    hand — serially and through the worker pool.
    """

    FIDELITY = 0.5
    SCALE = 0.1

    def test_rung0_cell_matches_api_run_at_same_fidelity(self):
        """spec@fidelity through api.run == hand-folded scale, same hashes."""
        from repro.api import ScenarioSpec, run

        spec = ScenarioSpec(name="det", provider="aws", model="mobilenet",
                            seed=SEED)
        rung0 = run(spec.with_fidelity(self.FIDELITY), seed=SEED,
                    scale=self.SCALE)
        folded = run(spec, seed=SEED, scale=self.SCALE * self.FIDELITY)
        assert rung0.table.column_hash() == folded.table.column_hash()
        assert rung0.cost == folded.cost
        assert rung0.workload_scale == folded.workload_scale

    def test_rung0_context_run_matches_api_run(self):
        """The context path (run cache, prefetch) == the api.run path."""
        from repro.api import ScenarioSpec, run
        from repro.experiments.base import ExperimentContext

        spec = ScenarioSpec(name="det", provider="aws", model="mobilenet",
                            seed=SEED).with_fidelity(self.FIDELITY)
        context = ExperimentContext(seed=SEED, scale=self.SCALE)
        via_context = context.run_scenario(spec)
        via_api = run(spec, seed=SEED, scale=self.SCALE)
        assert via_context.table.column_hash() == via_api.table.column_hash()
        assert via_context.cost == via_api.cost

    def test_rung0_worker_fanout_matches_serial(self):
        """Short-horizon cells over workers=2: same golden hashes."""
        from repro.core.scenario import ScenarioSpec
        from repro.experiments.base import ExperimentContext

        base = ScenarioSpec(name="det", provider="aws", model="mobilenet")
        specs = [base.with_seed(SEED + r, name=f"det/r{r}")
                 .with_fidelity(self.FIDELITY) for r in range(3)]

        def run_all(workers):
            context = ExperimentContext(seed=SEED, scale=self.SCALE,
                                        workers=workers)
            context.prefetch_specs(specs)
            return [context.run_scenario(s) for s in specs]

        serial = run_all(workers=0)
        parallel = run_all(workers=2)
        for left, right in zip(serial, parallel):
            assert left.table.column_hash() == right.table.column_hash()
            assert left.cost == right.cost


class TestPackedTransport:
    def test_packed_round_trip_is_lossless(self, w40_cell):
        deployment, workload = w40_cell
        result = ServingBenchmark(seed=SEED).run(deployment, workload)
        wire = pickle.dumps(result.table.packed())
        restored = OutcomeTable.from_packed(pickle.loads(wire))
        assert restored.column_hash() == result.table.column_hash()

    def test_packed_is_smaller_than_object_pickles(self, w40_cell):
        deployment, workload = w40_cell
        result = ServingBenchmark(seed=SEED).run(deployment, workload)
        packed = len(pickle.dumps(result.to_transport()))
        legacy = len(pickle.dumps(result.outcomes))
        # The margin widens with request count (per-table overhead is
        # constant); at this tiny 750-request cell it is already ~1.9x.
        assert packed < legacy * 0.6


class TestLateAndPartialCommits:
    def test_timed_out_requests_keep_serve_side_fields(self, monkeypatch,
                                                       w40_cell):
        """A request served *after* its client gave up still records the
        instance assignment, billed duration, and predict stage (the
        platform re-commits the row through the executor's sink)."""
        import repro.platforms.serverless as serverless_module
        monkeypatch.setattr(serverless_module, "_FUNCTION_TIMEOUT_S", 0.05)
        deployment, workload = w40_cell
        result = ServingBenchmark(seed=SEED).run(deployment, workload)
        table = result.table
        timeout_code = table.error_names.index("timeout")
        timed_out = table.error_code == timeout_code
        assert timed_out.any()
        served_late = timed_out & (table.instance_id >= 0)
        assert served_late.any()
        assert (table.billed_duration_s[served_late] > 0).all()
        assert (table.stage_column("predict")[served_late] > 0).all()

    def test_unfinished_requests_keep_partial_stages(self):
        """Registered-but-never-completed rows flush their accrued state."""
        from repro.serving.outcome_table import OutcomeRecorder
        from repro.serving.records import RequestOutcome, Stage

        recorder = OutcomeRecorder(capacity=2)
        outcome = RequestOutcome(request_id=0, client_id=0, send_time=1.0)
        recorder.register(outcome)
        outcome.add_stage(Stage.NETWORK, 0.25)
        outcome.instance_id = 3
        table = recorder.table()
        assert table.stage_column(Stage.NETWORK)[0] == 0.25
        assert table.instance_id[0] == 3
        assert table.completion_time[0] != table.completion_time[0]  # NaN


class TestObjectViewConsistency:
    def test_metrics_match_object_view(self, w40_cell):
        """Masked reductions agree with the reconstructed object view."""
        deployment, workload = w40_cell
        result = ServingBenchmark(seed=SEED).run(deployment, workload)
        outcomes = result.outcomes
        assert result.total_requests == len(outcomes)
        successes = [o for o in outcomes if o.success]
        assert result.success_ratio == len(successes) / len(outcomes)
        assert result.average_latency == pytest.approx(
            sum(o.latency for o in successes) / len(successes))
        cold = sum(1 for o in successes if o.cold_start)
        assert result.cold_start_ratio == cold / len(successes)
        # Stage attributions survive the round trip through the columns.
        for outcome in outcomes[:50]:
            for stage, seconds in outcome.breakdown.items():
                assert seconds >= 0.0, stage
