"""Setup shim.

The project is configured entirely through ``pyproject.toml``; this file
exists so that editable installs keep working on machines without the
``wheel`` package (offline environments cannot fetch it), via::

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
